package chase

// Batch-at-a-time columnar join execution (Options.Batch).
//
// The frame executor (plan.go) is tuple-at-a-time: one depth-first walk per
// seed match, probing the store's hash indexes per partial binding. The
// batch executor processes an entire semi-naive delta per rule in one
// vectorized pass over the sorted columnar indexes (database.Columnar): the
// tuple set lives column-wise (one dense []term.ValueID per bound slot, one
// []database.FactID per bound body atom), every join depth extends all
// tuples at once against a pre-chosen probe of the predicate's columnar
// runs, pushed-down steps run as whole-column filters with vectorized fast
// paths, and the columns convert to []binding only at the emission boundary
// — the same frame→Substitution boundary the frame executor uses.
//
// Determinism contract. The batch output is byte-identical to the frame
// executor's (and hence to the legacy engine's) at any worker count:
//
//   - At each depth the frame executor enumerates, per partial binding, the
//     facts matching the atom pattern in ascending fact-id order — whichever
//     hash bucket CandidatesSlots picks, the filtered candidate sequence is
//     the same, because every bucket keeps ids ascending. The batch
//     executor walks input tuples in order and, per tuple, visits columnar
//     candidates in dense order, which is fact-id order (database.Columnar
//     keeps its dense numbering id-sorted). Output tuple order therefore
//     equals the frame executor's depth-first leaf order at every depth.
//   - Pushed-down steps are per-tuple filters and deterministic functions of
//     bound operands; running them column-wise over the same tuple sequence
//     keeps the surviving set and order identical. The vectorized fast
//     paths are semantics-preserving: id equality coincides with
//     term.Term.Equal for interned values (numerically equal int/float
//     constants share an id), and term.Interner.Numeric returns exactly the
//     AsFloat view that Term.Compare uses for numeric ordering; every other
//     case falls back to the shared condHolds/arithCombine helpers.
//   - Parallel mode chunks the depth-0 tuple set contiguously and
//     concatenates per-chunk outputs in chunk order, the same argument as
//     parallel.go.
//
// The one intended divergence, shared with the frame executor's pushdown
// (see plan.go): on ill-typed programs that error at run time, the batch
// pass evaluates depth-by-depth where the frame executor recurses
// tuple-by-tuple, so a different (equally deterministic) homomorphism may
// surface the error. The differential suites skip such programs.

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

// batchCols is the column-wise tuple set flowing through one batch pass:
// tuple i is the cross-section of all non-nil columns at index i. A nil
// column means the slot/val/atom is not bound yet at the current depth.
type batchCols struct {
	n     int
	slots [][]term.ValueID
	vals  [][]term.Term
	facts [][]database.FactID
}

// Admission modes (semi-naive pivot filter translated to dense space) and
// probe strategies of one join depth.
const (
	admitAny = iota
	admitOld // dense index < bound (facts older than the boundary)
	admitNew // dense index >= bound (facts at or beyond the boundary)
)

const (
	scanExtent = iota // no usable constant/bound position: scan the extent
	probeConst        // binary-search a constant position once per pass
	probeBound        // binary-search a bound-slot position once per tuple
)

// batchAdmit is the precompiled candidate admission of one join depth:
// the columnar index, the pattern ops with cached dense columns, the
// pivot-filter mode, and the chosen probe strategy. It is immutable after
// newBatchExec, so parallel chunks share it.
type batchAdmit struct {
	atomIdx int
	c       *database.Columnar
	ops     []database.SlotOp
	// cols caches c.Col(pos) per pattern position; samePos maps a SlotSame
	// position to the earlier SlotWrite position of the same slot.
	cols    [][]term.ValueID
	samePos []int
	// writePoss/writeSlots are the SlotWrite positions and their slots.
	writePoss  []int
	writeSlots []int
	mode       int
	bound      int32
	strategy   int
	probePos   int
	probeVal   term.ValueID
	probeSlot  int
	// skipPos is the probe position (already guaranteed by the run search),
	// excluded from the per-candidate check; -1 when scanning.
	skipPos int
}

// batchExec runs one ordered plan batch-at-a-time. It is immutable after
// construction: parallel chunks of the same pivot share one batchExec, and
// all per-pass mutable state lives in batchCols values and local buffers.
type batchExec struct {
	e      *engine
	p      *plan
	op     *orderedPlan
	admits []batchAdmit
}

// ensurePlanColumnar refreshes the columnar index of every body predicate of
// the plan, with sorted runs for exactly the positions some ordered plan of
// the rule can probe — the constant and bound positions of its slot ops;
// write positions only ever need the dense columns. It must run while the
// store is writable — the engine calls it at the start of every batch join,
// before any Freeze — so the per-pivot newBatchExec calls below find every
// run already built.
func (e *engine) ensurePlanColumnar(p *plan) {
	need := make(map[string][]int, len(p.rule.Body))
	for _, a := range p.rule.Body {
		if _, ok := need[a.Predicate]; !ok {
			need[a.Predicate] = nil
		}
	}
	for _, op := range p.orders {
		for d := range op.atoms {
			pa := &op.atoms[d]
			need[pa.Predicate] = append(need[pa.Predicate], probePositions(pa.Ops)...)
		}
	}
	for pred, poss := range need {
		e.store.EnsureColumnarRuns(pred, poss)
	}
}

// probePositions lists the positions of one atom's slot ops that the
// executor could select as a probe: constants and already-bound slots.
func probePositions(ops []database.SlotOp) []int {
	var poss []int
	for pos, sop := range ops {
		if sop.Kind == database.SlotConst || sop.Kind == database.SlotBound {
			poss = append(poss, pos)
		}
	}
	return poss
}

// newBatchExec precompiles one ordered plan against the current columnar
// indexes. pivot < 0 selects the unfiltered full join; otherwise the
// standard pivot filter (atoms before the pivot match only pre-boundary
// facts, the pivot only post-boundary ones) is translated to dense-index
// comparisons.
func (e *engine) newBatchExec(p *plan, op *orderedPlan, pivot int, boundary database.FactID) *batchExec {
	bx := &batchExec{e: e, p: p, op: op, admits: make([]batchAdmit, len(op.atoms))}
	for d := range op.atoms {
		pa := &op.atoms[d]
		atomIdx := op.order[d]
		c := e.store.EnsureColumnarRuns(pa.Predicate, probePositions(pa.Ops))
		ad := &bx.admits[d]
		ad.atomIdx = atomIdx
		ad.c = c
		ad.ops = pa.Ops
		ad.cols = make([][]term.ValueID, len(pa.Ops))
		ad.samePos = make([]int, len(pa.Ops))
		for pos, sop := range pa.Ops {
			ad.cols[pos] = c.Col(pos)
			ad.samePos[pos] = -1
			if sop.Kind == database.SlotSame {
				for pos2 := 0; pos2 < pos; pos2++ {
					if pa.Ops[pos2].Kind == database.SlotWrite && pa.Ops[pos2].Slot == sop.Slot {
						ad.samePos[pos] = pos2
						break
					}
				}
			}
			if sop.Kind == database.SlotWrite {
				ad.writePoss = append(ad.writePoss, pos)
				ad.writeSlots = append(ad.writeSlots, sop.Slot)
			}
		}
		if pivot >= 0 && atomIdx <= pivot {
			if atomIdx < pivot {
				ad.mode = admitOld
			} else {
				ad.mode = admitNew
			}
			ad.bound = c.DenseBoundary(boundary)
		}
		// Probe selection: the cheapest of scanning the extent, the exact
		// run of a constant position, and the estimated run of a bound
		// position. Any choice yields the same candidates in the same
		// order; this only sets the work per tuple.
		ad.strategy = scanExtent
		ad.probePos = -1
		ad.skipPos = -1
		bestCost := c.Extent()
		for pos, sop := range pa.Ops {
			switch sop.Kind {
			case database.SlotConst:
				if n := c.RunLen(pos, sop.Val); n < bestCost {
					bestCost = n
					ad.strategy = probeConst
					ad.probePos = pos
					ad.probeVal = sop.Val
				}
			case database.SlotBound:
				if n := c.AvgRun(pos); n < bestCost {
					bestCost = n
					ad.strategy = probeBound
					ad.probePos = pos
					ad.probeSlot = sop.Slot
				}
			}
		}
		if ad.strategy != scanExtent {
			ad.skipPos = ad.probePos
		}
	}
	return bx
}

// admit checks one candidate (dense index k of the depth's predicate)
// against tuple i: pivot mode, arity, and every pattern position except the
// probed one — all reads of dense columns. The superseded check is hoisted
// to the caller (it needs the fact id anyway).
func (ad *batchAdmit) admit(st *batchCols, i int, k int32) bool {
	switch ad.mode {
	case admitOld:
		if k >= ad.bound {
			return false
		}
	case admitNew:
		if k < ad.bound {
			return false
		}
	}
	if ad.c.RowLen(k) != len(ad.ops) {
		return false
	}
	for pos := range ad.ops {
		if pos == ad.skipPos {
			continue
		}
		switch sop := &ad.ops[pos]; sop.Kind {
		case database.SlotConst:
			if ad.cols[pos][k] != sop.Val {
				return false
			}
		case database.SlotBound:
			if ad.cols[pos][k] != st.slots[sop.Slot][i] {
				return false
			}
		case database.SlotSame:
			if ad.cols[pos][k] != ad.cols[ad.samePos[pos]][k] {
				return false
			}
		}
	}
	return true
}

// seed runs the depth-0 extension from a single virtual empty tuple,
// producing the batch counterpart of planSeeds. Steps scheduled at depth 0
// are deliberately not applied here — parallel mode chunks the seed set
// first and lets each chunk filter its own tuples (see planSeeds).
func (bx *batchExec) seed() *batchCols {
	return bx.extend(0, &batchCols{
		n:     1,
		slots: make([][]term.ValueID, bx.p.nslots),
		vals:  make([][]term.Term, bx.p.nvals),
		facts: make([][]database.FactID, len(bx.p.rule.Body)),
	})
}

// extend joins every input tuple with every admissible match of the atom at
// order position d. Tuples are visited in order and candidates per tuple in
// dense (fact-id) order, so the output order equals the frame executor's
// depth-first leaf order. Surviving input columns are gathered through a
// src indirection — the columnar counterpart of copying the frame per leaf.
func (bx *batchExec) extend(d int, st *batchCols) *batchCols {
	ad := &bx.admits[d]
	superseded := bx.e.superseded
	checkSuper := len(superseded) > 0
	var src []int32
	var newFacts []database.FactID
	newCols := make([][]term.ValueID, len(ad.writePoss))

	push := func(i int, k int32) {
		id := ad.c.ID(k)
		if checkSuper && superseded[id] {
			return
		}
		src = append(src, int32(i))
		newFacts = append(newFacts, id)
		for w, pos := range ad.writePoss {
			newCols[w] = append(newCols[w], ad.cols[pos][k])
		}
	}

	switch ad.strategy {
	case probeConst:
		base, tail := ad.c.Runs(ad.probePos, ad.probeVal)
		for i := 0; i < st.n; i++ {
			for _, k := range base {
				if ad.admit(st, i, k) {
					push(i, k)
				}
			}
			for _, k := range tail {
				if ad.admit(st, i, k) {
					push(i, k)
				}
			}
		}
	case probeBound:
		col := st.slots[ad.probeSlot]
		var base, tail []int32
		probed := false
		var lastVal term.ValueID
		for i := 0; i < st.n; i++ {
			if v := col[i]; !probed || v != lastVal {
				base, tail = ad.c.Runs(ad.probePos, v)
				lastVal, probed = v, true
			}
			for _, k := range base {
				if ad.admit(st, i, k) {
					push(i, k)
				}
			}
			for _, k := range tail {
				if ad.admit(st, i, k) {
					push(i, k)
				}
			}
		}
	default:
		lo, hi := int32(0), int32(ad.c.Extent())
		switch ad.mode {
		case admitOld:
			hi = ad.bound
		case admitNew:
			lo = ad.bound
		}
		for i := 0; i < st.n; i++ {
			for k := lo; k < hi; k++ {
				if ad.admit(st, i, k) {
					push(i, k)
				}
			}
		}
	}

	out := &batchCols{
		n:     len(src),
		slots: make([][]term.ValueID, len(st.slots)),
		vals:  make([][]term.Term, len(st.vals)),
		facts: make([][]database.FactID, len(st.facts)),
	}
	for s, col := range st.slots {
		if col == nil {
			continue
		}
		g := make([]term.ValueID, len(src))
		for j, i := range src {
			g[j] = col[i]
		}
		out.slots[s] = g
	}
	for w, slot := range ad.writeSlots {
		out.slots[slot] = newCols[w]
	}
	for v, col := range st.vals {
		if col == nil {
			continue
		}
		g := make([]term.Term, len(src))
		for j, i := range src {
			g[j] = col[i]
		}
		out.vals[v] = g
	}
	for a, col := range st.facts {
		if col == nil {
			continue
		}
		g := make([]database.FactID, len(src))
		for j, i := range src {
			g[j] = col[i]
		}
		out.facts[a] = g
	}
	out.facts[ad.atomIdx] = newFacts
	return out
}

// runSteps applies the steps scheduled at depth d column-wise, in the same
// relative order as the frame executor's runSteps; filters compact the
// tuple set in place of dropping one frame at a time.
func (bx *batchExec) runSteps(d int, st *batchCols) (*batchCols, error) {
	steps := bx.op.steps[d]
	for i := range steps {
		var err error
		switch s := &steps[i]; {
		case s.assign != nil:
			err = bx.assignCol(s.assign, st)
		case s.cond != nil:
			st, err = bx.filterCond(s.cond, st)
		case s.neg != nil:
			st = bx.filterNeg(s.neg, st)
		}
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			return st, nil
		}
	}
	return st, nil
}

// resolveAt turns an operand into its term for tuple i.
func (bx *batchExec) resolveAt(o planOperand, st *batchCols, i int) term.Term {
	if o.isConst {
		return o.t
	}
	if o.kind == refVal {
		return st.vals[o.idx][i]
	}
	return bx.e.store.Interner().Value(st.slots[o.idx][i])
}

// evalExprAt evaluates a compiled expression for tuple i with the shared
// arithmetic semantics.
func (bx *batchExec) evalExprAt(e *planExpr, st *batchCols, i int) (term.Term, error) {
	if e.leaf {
		return bx.resolveAt(e.operand, st, i), nil
	}
	l, err := bx.evalExprAt(e.l, st, i)
	if err != nil {
		return term.Term{}, err
	}
	r, err := bx.evalExprAt(e.r, st, i)
	if err != nil {
		return term.Term{}, err
	}
	return arithCombine(e.op, l, r, e.src)
}

// assignCol evaluates one assignment over all tuples into a value column.
func (bx *batchExec) assignCol(a *planAssign, st *batchCols) error {
	col := make([]term.Term, st.n)
	for i := 0; i < st.n; i++ {
		v, err := bx.evalExprAt(a.expr, st, i)
		if err != nil {
			return fmt.Errorf("assignment %s: %w", a.src, err)
		}
		col[i] = v
	}
	st.vals[a.target] = col
	return nil
}

// filterCond drops the tuples for which the condition does not hold. Two
// vectorized fast paths cover the hot cases — Eq/Ne over id space (id
// equality is term equality for interned values) and numeric ordering via
// the interner's Numeric cache — with per-tuple fallback to the shared
// condHolds for everything else, so filter decisions and error messages
// match the frame executor exactly.
func (bx *batchExec) filterCond(c *planCond, st *batchCols) (*batchCols, error) {
	in := bx.e.store.Interner()
	keep := make([]bool, st.n)
	kept := 0

	if c.l.isConst && c.r.isConst {
		// Constant condition: evaluate once, keep all or none.
		ok, err := condHolds(c.op, c.l.t, c.r.t, c.src)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &batchCols{
				slots: make([][]term.ValueID, len(st.slots)),
				vals:  make([][]term.Term, len(st.vals)),
				facts: make([][]database.FactID, len(st.facts)),
			}, nil
		}
		return st, nil
	}

	idSide := func(o planOperand) (col []term.ValueID, val term.ValueID, ok bool) {
		if o.isConst {
			if id, found := in.Lookup(o.t); found {
				return nil, id, true
			}
			// Never interned: no stored value is semantically equal, so
			// NoValue (matched by no slot value) encodes it exactly.
			return nil, term.NoValue, true
		}
		if o.kind == refSlot {
			return st.slots[o.idx], 0, true
		}
		return nil, 0, false
	}

	switch c.op {
	case ast.OpEq, ast.OpNe:
		lCol, lVal, lOK := idSide(c.l)
		rCol, rVal, rOK := idSide(c.r)
		if lOK && rOK {
			want := c.op == ast.OpEq
			for i := 0; i < st.n; i++ {
				l, r := lVal, rVal
				if lCol != nil {
					l = lCol[i]
				}
				if rCol != nil {
					r = rCol[i]
				}
				if (l == r) == want {
					keep[i] = true
					kept++
				}
			}
			return compactCols(st, keep, kept), nil
		}
	default:
		// Numeric ordering fast path: slot operands read the interner's
		// float cache, constants pre-convert; any non-numeric tuple falls
		// back to the shared semantics (string ordering, error parity).
		numAt := func(o planOperand, i int) (float64, bool) {
			if o.isConst {
				return o.t.AsFloat()
			}
			if o.kind == refVal {
				return st.vals[o.idx][i].AsFloat()
			}
			return in.Numeric(st.slots[o.idx][i])
		}
		for i := 0; i < st.n; i++ {
			lf, lok := numAt(c.l, i)
			rf, rok := numAt(c.r, i)
			var ok bool
			if lok && rok {
				switch c.op {
				case ast.OpLt:
					ok = lf < rf
				case ast.OpLe:
					ok = lf <= rf
				case ast.OpGt:
					ok = lf > rf
				case ast.OpGe:
					ok = lf >= rf
				}
			} else {
				var err error
				ok, err = condHolds(c.op, bx.resolveAt(c.l, st, i), bx.resolveAt(c.r, st, i), c.src)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				keep[i] = true
				kept++
			}
		}
		return compactCols(st, keep, kept), nil
	}

	// Generic path (computed-value operands under Eq/Ne).
	for i := 0; i < st.n; i++ {
		ok, err := condHolds(c.op, bx.resolveAt(c.l, st, i), bx.resolveAt(c.r, st, i), c.src)
		if err != nil {
			return nil, err
		}
		if ok {
			keep[i] = true
			kept++
		}
	}
	return compactCols(st, keep, kept), nil
}

// filterNeg drops the tuples for which the negated atom matches some
// current (non-superseded) fact — the same stratified-negation rejection as
// executor.negBlocked, probed per tuple through the store's hash indexes
// (negation probes are point lookups; the columnar index buys nothing).
func (bx *batchExec) filterNeg(ng *planNeg, st *batchCols) *batchCols {
	store := bx.e.store
	in := store.Interner()
	frame := make([]term.ValueID, bx.p.nslots)
	var scratch []database.SlotOp
	keep := make([]bool, st.n)
	kept := 0
	for i := 0; i < st.n; i++ {
		for s, col := range st.slots {
			if col != nil {
				frame[s] = col[i]
			} else {
				frame[s] = term.NoValue
			}
		}
		pat := ng.pat
		if len(ng.valFixes) > 0 {
			scratch = append(scratch[:0], ng.pat.Ops...)
			resolvable := true
			for _, vf := range ng.valFixes {
				id, ok := in.Lookup(st.vals[vf.val][i])
				if !ok {
					// The computed value was never interned, so no stored
					// fact can contain it: the negated atom has no match.
					resolvable = false
					break
				}
				scratch[vf.pos] = database.SlotOp{Kind: database.SlotConst, Val: id}
			}
			if !resolvable {
				keep[i] = true
				kept++
				continue
			}
			pat = database.SlotPattern{Predicate: ng.pat.Predicate, Ops: scratch}
		}
		blocked := false
		for _, id := range store.CandidatesSlots(pat, frame) {
			if bx.e.superseded[id] {
				continue
			}
			if store.BindRowSlots(pat, id, frame) {
				blocked = true
				break
			}
		}
		if !blocked {
			keep[i] = true
			kept++
		}
	}
	return compactCols(st, keep, kept)
}

// compactCols gathers the kept tuples, preserving order. It returns the
// input unchanged when nothing was dropped.
func compactCols(st *batchCols, keep []bool, kept int) *batchCols {
	if kept == st.n {
		return st
	}
	out := &batchCols{
		n:     kept,
		slots: make([][]term.ValueID, len(st.slots)),
		vals:  make([][]term.Term, len(st.vals)),
		facts: make([][]database.FactID, len(st.facts)),
	}
	for s, col := range st.slots {
		if col == nil {
			continue
		}
		g := make([]term.ValueID, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.slots[s] = g
	}
	for v, col := range st.vals {
		if col == nil {
			continue
		}
		g := make([]term.Term, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.vals[v] = g
	}
	for a, col := range st.facts {
		if col == nil {
			continue
		}
		g := make([]database.FactID, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.facts[a] = g
	}
	return out
}

// appendBindings converts the leaf columns to bindings. Frames and value
// tuples are carved out of two arena allocations (they are transient: read
// once at the emission boundary); the premise fact tuples are allocated per
// binding because Derivation.Premises and Contribution.Premises retain them
// for the lifetime of the result.
func (bx *batchExec) appendBindings(st *batchCols, out []binding) []binding {
	if st.n == 0 {
		return out
	}
	p := bx.p
	nb := len(st.facts)
	frames := make([]term.ValueID, st.n*p.nslots)
	var vals []term.Term
	if p.nvals > 0 {
		vals = make([]term.Term, st.n*p.nvals)
	}
	for i := 0; i < st.n; i++ {
		b := binding{
			frame: frames[i*p.nslots : (i+1)*p.nslots : (i+1)*p.nslots],
			facts: make([]database.FactID, nb),
		}
		for s := 0; s < p.nslots; s++ {
			b.frame[s] = st.slots[s][i]
		}
		for a := 0; a < nb; a++ {
			b.facts[a] = st.facts[a][i]
		}
		if p.nvals > 0 {
			b.vals = vals[i*p.nvals : (i+1)*p.nvals : (i+1)*p.nvals]
			for v := 0; v < p.nvals; v++ {
				b.vals[v] = st.vals[v][i]
			}
		}
		out = append(out, b)
	}
	return out
}

// finishFrom drives an already-seeded tuple set through the remaining
// depths: steps at the current depth, then the next extension, with a
// cancellation checkpoint per depth.
func (bx *batchExec) finishFrom(st *batchCols, out []binding) ([]binding, error) {
	for d := 0; ; d++ {
		if err := bx.e.checkCtx(); err != nil {
			return nil, err
		}
		var err error
		st, err = bx.runSteps(d, st)
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			return out, nil
		}
		if d+1 == len(bx.op.atoms) {
			return bx.appendBindings(st, out), nil
		}
		st = bx.extend(d+1, st)
		if st.n == 0 {
			return out, nil
		}
	}
}

// run seeds and finishes one sequential batch pass, appending to out.
func (bx *batchExec) run(out []binding) ([]binding, error) {
	if err := bx.e.checkCtx(); err != nil {
		return nil, err
	}
	st := bx.seed()
	if st.n == 0 {
		return out, nil
	}
	return bx.finishFrom(st, out)
}

// joinBatchBody is the batch-engine full body join (sequential).
func (e *engine) joinBatchBody(p *plan) ([]binding, error) {
	e.ensurePlanColumnar(p)
	bx := e.newBatchExec(p, p.orders[0], -1, 0)
	out, err := bx.run(nil)
	if err != nil || len(out) == 0 {
		return nil, err
	}
	return out, nil
}

// joinBatchSemiNaive is the batch-engine semi-naive join (sequential): one
// batch pass per pivot decomposition, outputs concatenated in pivot order
// exactly like the frame and legacy engines.
func (e *engine) joinBatchSemiNaive(p *plan, boundary database.FactID) ([]binding, error) {
	e.ensurePlanColumnar(p)
	var all []binding
	for pivot := range p.orders {
		bx := e.newBatchExec(p, p.orders[pivot], pivot, boundary)
		var err error
		all, err = bx.run(all)
		if err != nil {
			return nil, err
		}
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}

// batchTask is one contiguous chunk of a pivot's seed tuples, finished
// independently on the worker pool and merged in task order.
type batchTask struct {
	bx  *batchExec
	st  *batchCols
	out []binding
}

// sliceCols returns the contiguous sub-range [lo, hi) of a tuple set; the
// sub-columns alias the input, which chunks only read.
func sliceCols(st *batchCols, lo, hi int) *batchCols {
	out := &batchCols{
		n:     hi - lo,
		slots: make([][]term.ValueID, len(st.slots)),
		vals:  make([][]term.Term, len(st.vals)),
		facts: make([][]database.FactID, len(st.facts)),
	}
	for s, col := range st.slots {
		if col != nil {
			out.slots[s] = col[lo:hi]
		}
	}
	for v, col := range st.vals {
		if col != nil {
			out.vals[v] = col[lo:hi]
		}
	}
	for a, col := range st.facts {
		if col != nil {
			out.facts[a] = col[lo:hi]
		}
	}
	return out
}

// appendBatchChunked splits a seeded tuple set into up to
// workers*chunksPerWorker contiguous chunks, preserving tuple order across
// the chunk sequence (the same chunk arithmetic as appendChunked).
func appendBatchChunked(tasks []*batchTask, bx *batchExec, st *batchCols, workers int) []*batchTask {
	if st.n == 0 {
		return tasks
	}
	chunks := workers * chunksPerWorker
	if chunks > st.n {
		chunks = st.n
	}
	for c := 0; c < chunks; c++ {
		lo := c * st.n / chunks
		hi := (c + 1) * st.n / chunks
		tasks = append(tasks, &batchTask{bx: bx, st: sliceCols(st, lo, hi)})
	}
	return tasks
}

// runBatchTasks finishes every chunk on the worker pool under the same
// Freeze/Thaw discipline as runPlanTasks, then merges the outputs in task
// order. Chunks only read shared state (the store, the columnar indexes —
// refreshed before the freeze — the superseded set, and the shared
// batchExec); every column a chunk produces is freshly allocated.
func (e *engine) runBatchTasks(tasks []*batchTask) ([]binding, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	e.store.Freeze()
	err := runParallel(e.workers, len(tasks), func(i int) error {
		t := tasks[i]
		out, err := t.bx.finishFrom(t.st, nil)
		if err != nil {
			return err
		}
		t.out = out
		return nil
	})
	e.store.Thaw()
	if err != nil {
		return nil, err
	}
	var all []binding
	for _, t := range tasks {
		all = append(all, t.out...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}

// joinBatchBodyParallel is joinBatchBody with the post-seed depths fanned
// out over the worker pool.
func (e *engine) joinBatchBodyParallel(p *plan) ([]binding, error) {
	e.ensurePlanColumnar(p)
	bx := e.newBatchExec(p, p.orders[0], -1, 0)
	tasks := appendBatchChunked(nil, bx, bx.seed(), e.workers)
	return e.runBatchTasks(tasks)
}

// joinBatchSemiNaiveParallel evaluates all pivot decompositions as one task
// pool; merging by (pivot, chunk) index reproduces the sequential
// pivot-by-pivot concatenation exactly.
func (e *engine) joinBatchSemiNaiveParallel(p *plan, boundary database.FactID) ([]binding, error) {
	e.ensurePlanColumnar(p)
	var tasks []*batchTask
	for pivot := range p.orders {
		bx := e.newBatchExec(p, p.orders[pivot], pivot, boundary)
		tasks = appendBatchChunked(tasks, bx, bx.seed(), e.workers)
	}
	return e.runBatchTasks(tasks)
}
