package chase

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// benchChainFacts builds a linear ownership chain of the given length with
// branching noise: c0 →(0.6) c1 →(0.6) … plus a 0.1 side edge per hop. The
// company-control program then derives control transitively along the spine,
// exercising recursive joins and per-hop aggregation.
func benchChainFacts(n int) []ast.Atom {
	var facts []ast.Atom
	name := func(i int) term.Term { return term.Str(fmt.Sprintf("c%d", i)) }
	for i := 0; i < n; i++ {
		facts = append(facts, ast.NewAtom("Company", name(i)))
		if i+1 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+1), term.Float(0.6)))
		}
		if i+2 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+2), term.Float(0.1)))
		}
	}
	return facts
}

// BenchmarkJoinControlChain runs the full recursive company-control chase
// over a 50-hop ownership chain under both join engines. The compiled
// sub-benchmark drives slot-plan executors; Legacy interprets the same rules
// with map-based substitutions.
func BenchmarkJoinControlChain(b *testing.B) {
	prog, err := parser.Parse(`
@output("Control").
@label("s1") Control(X, X) :- Company(X).
@label("s2") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	if err != nil {
		b.Fatal(err)
	}
	facts := benchChainFacts(50)
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"Compiled", Options{ExtraFacts: facts}},
		{"Legacy", Options{ExtraFacts: facts, Legacy: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(prog, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Derived("Control")) == 0 {
					b.Fatal("no control facts derived")
				}
			}
		})
	}
}
