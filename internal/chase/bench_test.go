package chase

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// benchChainFacts builds a linear ownership chain of the given length with
// branching noise: c0 →(0.6) c1 →(0.6) … plus a 0.1 side edge per hop. The
// company-control program then derives control transitively along the spine,
// exercising recursive joins and per-hop aggregation.
func benchChainFacts(n int) []ast.Atom {
	var facts []ast.Atom
	name := func(i int) term.Term { return term.Str(fmt.Sprintf("c%d", i)) }
	for i := 0; i < n; i++ {
		facts = append(facts, ast.NewAtom("Company", name(i)))
		if i+1 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+1), term.Float(0.6)))
		}
		if i+2 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+2), term.Float(0.1)))
		}
	}
	return facts
}

// BenchmarkExtractProof measures proof extraction for every answer of a
// 60-hop recursive control chase — the workload of an explain-all request.
// Cold walks the chase graph back from each answer independently (the
// pre-memo behavior and the fallback for oversized stores); Warm serves
// the same proofs from the proof-closure memo after a single build.
func BenchmarkExtractProof(b *testing.B) {
	prog, err := parser.Parse(`
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(prog, Options{ExtraFacts: benchChainFacts(60)})
	if err != nil {
		b.Fatal(err)
	}
	answers := res.Answers()
	if len(answers) == 0 {
		b.Fatal("no answers")
	}
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, id := range answers {
				if p := res.extractProofWalk(id); p.Size() == 0 {
					b.Fatal("empty proof")
				}
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := res.ExtractProof(answers[0]); err != nil { // build the memo
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range answers {
				p, err := res.ExtractProof(id)
				if err != nil {
					b.Fatal(err)
				}
				if p.Size() == 0 {
					b.Fatal("empty proof")
				}
			}
		}
	})
}

// BenchmarkJoinControlChain runs the full recursive company-control chase
// over a 50-hop ownership chain under both join engines. The compiled
// sub-benchmark drives slot-plan executors; Legacy interprets the same rules
// with map-based substitutions.
func BenchmarkJoinControlChain(b *testing.B) {
	prog, err := parser.Parse(`
@output("Control").
@label("s1") Control(X, X) :- Company(X).
@label("s2") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	if err != nil {
		b.Fatal(err)
	}
	facts := benchChainFacts(50)
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"Compiled", Options{ExtraFacts: facts}},
		{"Legacy", Options{ExtraFacts: facts, Legacy: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(prog, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Derived("Control")) == 0 {
					b.Fatal("no control facts derived")
				}
			}
		})
	}
}

// BenchmarkTwoHopEmission measures the vectorized emission path of the
// batch executor on a dense two-hop join. Cold derives every output fact
// (key build + keyed insert + derivation per row); warm re-runs with the
// previous outputs pre-loaded as extensional facts, so every emitted row is
// a duplicate and the path must cost one allocation-free LookupKey per row
// — allocations stay O(columns), not O(rows). ReportAllocs makes the
// contrast visible in the -benchmem columns.
func BenchmarkTwoHopEmission(b *testing.B) {
	prog, err := parser.Parse(`
@output("Risky").
@label("t1") Risky(X, Z) :- Own(X, Y, S1), Own(Y, Z, S2), S1 > 0.5, S2 > 0.5.
`)
	if err != nil {
		b.Fatal(err)
	}
	facts := denseOwnership(8, 40, 8, 1)
	res, err := Run(prog, Options{Batch: true, ExtraFacts: facts})
	if err != nil {
		b.Fatal(err)
	}
	derived := 0
	warmFacts := append([]ast.Atom{}, facts...)
	for _, f := range res.Store.Facts() {
		if !f.Extensional {
			warmFacts = append(warmFacts, f.Atom)
			derived++
		}
	}
	if derived == 0 {
		b.Fatal("two-hop derived nothing")
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(prog, Options{Batch: true, ExtraFacts: facts}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(prog, Options{Batch: true, ExtraFacts: warmFacts}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
