// Package cmdutil holds the shared command-line lifecycle helpers: a
// signal-aware root context so Ctrl-C (or a service manager's SIGTERM)
// cancels a long reasoning run cleanly instead of killing the process
// mid-write, and an interruptible runner for work that predates context
// plumbing.
package cmdutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns the root context of a command invocation: canceled
// on SIGINT or SIGTERM, and — when timeout > 0 — expired after the timeout.
// The CancelFunc releases the signal registration; a second signal after the
// first falls back to the default handler and kills the process, so a hung
// run can always be forced down.
func SignalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}

// RunInterruptible runs fn on its own goroutine and waits for it or for the
// context, whichever finishes first. It exists for call trees that do not
// accept a context yet (the figure generators): on cancellation the
// goroutine is abandoned, which is acceptable only because every caller
// exits the process right after. Returns fn's error, or the context's.
func RunInterruptible(ctx context.Context, fn func() error) error {
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}
