package glossary

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// figure7Src is the domain glossary of the paper's Figure 7.
const figure7Src = `
% Domain glossary for the simplified stress test (Figure 7)
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

func TestParseFigure7(t *testing.T) {
	g, err := Parse(figure7Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	preds := g.Predicates()
	want := []string{"Debts", "Default", "HasCapital", "Risk", "Shock"}
	if len(preds) != len(want) {
		t.Fatalf("predicates = %v", preds)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("predicates[%d] = %s, want %s", i, preds[i], want[i])
		}
	}
	e, ok := g.Entry("Debts")
	if !ok {
		t.Fatal("Debts missing")
	}
	if e.Arity() != 3 || e.Params[0] != "d" || e.Params[2] != "v" {
		t.Errorf("Debts entry = %+v", e)
	}
}

func TestEntryValidate(t *testing.T) {
	tests := []struct {
		name string
		e    Entry
		ok   bool
	}{
		{"valid", Entry{"P", []string{"a"}, "<a> holds."}, true},
		{"zero arity", Entry{"P", nil, "something happened."}, true},
		{"empty predicate", Entry{"", []string{"a"}, "<a>."}, false},
		{"empty text", Entry{"P", []string{"a"}, "  "}, false},
		{"unknown token", Entry{"P", []string{"a"}, "<a> and <b>."}, false},
		{"unused param", Entry{"P", []string{"a", "b"}, "<a> only."}, false},
		{"repeated param", Entry{"P", []string{"a", "a"}, "<a>."}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.e.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok %v", err, tt.ok)
			}
		})
	}
}

func TestEntryRender(t *testing.T) {
	e := Entry{"Debts", []string{"d", "c", "v"}, "<d> has an amount <v> of debts with <c>."}
	got := e.Render(func(pos int, param string) string {
		return map[int]string{0: "A", 1: "B", 2: "7"}[pos]
	})
	if got != "A has an amount 7 of debts with B." {
		t.Errorf("Render = %q", got)
	}
}

func TestAddDuplicate(t *testing.T) {
	g := New()
	g.MustAdd("P", []string{"a"}, "<a>.")
	if err := g.Add(Entry{"P", []string{"a"}, "<a>!"}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic")
		}
	}()
	New().MustAdd("P", []string{"a"}, "<b>.")
}

func TestCovers(t *testing.T) {
	prog, err := parser.Parse(`
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
`)
	if err != nil {
		t.Fatal(err)
	}
	g := MustParse(figure7Src)
	if errs := g.Covers(prog); len(errs) != 0 {
		t.Errorf("Covers = %v, want none", errs)
	}

	// Missing entry.
	g2 := New()
	g2.MustAdd("Default", []string{"f"}, "<f> is in default.")
	errs := g2.Covers(prog)
	if len(errs) == 0 {
		t.Fatal("missing entries not reported")
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, pred := range []string{"Shock", "HasCapital", "Debts", "Risk"} {
		if !strings.Contains(joined, pred) {
			t.Errorf("Covers errors missing %s: %s", pred, joined)
		}
	}

	// Arity mismatch.
	g3 := MustParse(figure7Src)
	prog2, _ := parser.Parse(`
@output("Default").
Default(F, Z) :- Shock(F, S), HasCapital(F, P1), S > P1.
`)
	errs3 := g3.Covers(prog2)
	found := false
	for _, e := range errs3 {
		if strings.Contains(e.Error(), "arity") {
			found = true
		}
	}
	if !found {
		t.Errorf("arity mismatch not reported: %v", errs3)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"garbage line", "not a glossary line"},
		{"missing colon", "P(a) <a>."},
		{"invalid entry", "P(a): <zzz>."},
		{"duplicate", "P(a): <a>.\nP(a): <a>!"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Error("invalid glossary accepted")
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	g := MustParse(figure7Src)
	again, err := Parse(g.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if again.String() != g.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", g.String(), again.String())
	}
}

func TestZeroArityEntry(t *testing.T) {
	g, err := Parse("Triggered(): the alarm was triggered.")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e, ok := g.Entry("Triggered")
	if !ok || e.Arity() != 0 {
		t.Errorf("entry = %+v", e)
	}
	if got := e.Render(func(int, string) string { return "X" }); got != "the alarm was triggered." {
		t.Errorf("Render = %q", got)
	}
}

func TestDraft(t *testing.T) {
	prog, err := parser.Parse(`
@output("Eligible").
Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
Eligible(X) :- HasCapital(X, P), not Default(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	g := New()
	g.MustAdd("Shock", []string{"f", "s"}, "a shock of <s> hits <f>.")
	draft := g.Draft(prog)
	// Existing entries are not re-drafted.
	if strings.Contains(draft, "Shock(") {
		t.Errorf("existing entry drafted:\n%s", draft)
	}
	for _, sub := range []string{
		"Default(a1): Default holds for <a1>.",
		"HasCapital(a1, a2): HasCapital holds for <a1> and <a2>.",
		"Eligible(a1): Eligible holds for <a1>.",
	} {
		if !strings.Contains(draft, sub) {
			t.Errorf("draft missing %q:\n%s", sub, draft)
		}
	}
	// A drafted glossary parses and covers the program.
	full, err := Parse(g.String() + draft)
	if err != nil {
		t.Fatalf("draft does not parse: %v\n%s", err, draft)
	}
	if errs := full.Covers(prog); len(errs) != 0 {
		t.Errorf("drafted glossary has gaps: %v", errs)
	}
}

func TestDraftZeroArity(t *testing.T) {
	prog, err := parser.Parse(`
@output("Alarm").
Alarm() :- Event(X).
Event("e").
`)
	if err != nil {
		t.Fatal(err)
	}
	draft := New().Draft(prog)
	if !strings.Contains(draft, "Alarm(): Alarm holds.") {
		t.Errorf("draft = %q", draft)
	}
}
