// Package glossary implements the domain glossary of Section 4.2 of the
// paper: a data dictionary for Datalog-based contexts mapping every
// predicate of the domain schema to its natural-language description, with
// positional <token> placeholders for the predicate's arguments.
//
// Example (the paper's Figure 7):
//
//	HasCapital(f, p): <f> is a financial institution with capital of <p>.
//	Shock(f, s): a shock amounting to <s> euro affects <f>.
//
// The glossary is the only domain-specific input the template pipeline
// needs; in an industrial context it is extracted from the corporate data
// dictionary.
package glossary

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Entry describes one predicate: its formal parameters and the description
// text containing a <param> token for each parameter.
type Entry struct {
	// Predicate is the relation symbol described.
	Predicate string
	// Params are the formal parameter names, one per argument position.
	Params []string
	// Text is the description with <param> tokens.
	Text string
}

// Arity returns the number of parameters.
func (e Entry) Arity() int { return len(e.Params) }

var tokenRe = regexp.MustCompile(`<([A-Za-z_][A-Za-z0-9_]*)>`)

// Validate checks that every token in the text names a parameter and every
// parameter occurs in the text (so no argument can be silently dropped from
// explanations).
func (e Entry) Validate() error {
	if e.Predicate == "" {
		return fmt.Errorf("glossary: entry with empty predicate")
	}
	if strings.TrimSpace(e.Text) == "" {
		return fmt.Errorf("glossary: entry %s has empty text", e.Predicate)
	}
	params := map[string]bool{}
	for _, p := range e.Params {
		if params[p] {
			return fmt.Errorf("glossary: entry %s repeats parameter %q", e.Predicate, p)
		}
		params[p] = true
	}
	used := map[string]bool{}
	for _, m := range tokenRe.FindAllStringSubmatch(e.Text, -1) {
		if !params[m[1]] {
			return fmt.Errorf("glossary: entry %s uses unknown token <%s>", e.Predicate, m[1])
		}
		used[m[1]] = true
	}
	for _, p := range e.Params {
		if !used[p] {
			return fmt.Errorf("glossary: entry %s never uses parameter <%s>", e.Predicate, p)
		}
	}
	return nil
}

// Render substitutes each <param> token using the provided function, which
// receives the parameter's position and name.
func (e Entry) Render(render func(pos int, param string) string) string {
	posOf := map[string]int{}
	for i, p := range e.Params {
		posOf[p] = i
	}
	return tokenRe.ReplaceAllStringFunc(e.Text, func(tok string) string {
		name := tok[1 : len(tok)-1]
		return render(posOf[name], name)
	})
}

// Glossary is a set of entries keyed by predicate.
type Glossary struct {
	entries map[string]Entry
}

// New returns an empty glossary.
func New() *Glossary {
	return &Glossary{entries: map[string]Entry{}}
}

// Add inserts an entry after validation. Adding a second entry for the same
// predicate is an error.
func (g *Glossary) Add(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if _, ok := g.entries[e.Predicate]; ok {
		return fmt.Errorf("glossary: duplicate entry for %s", e.Predicate)
	}
	g.entries[e.Predicate] = e
	return nil
}

// MustAdd is Add for compile-time constant entries; it panics on error.
func (g *Glossary) MustAdd(pred string, params []string, text string) {
	if err := g.Add(Entry{Predicate: pred, Params: params, Text: text}); err != nil {
		panic(err)
	}
}

// Entry returns the entry for a predicate.
func (g *Glossary) Entry(pred string) (Entry, bool) {
	e, ok := g.entries[pred]
	return e, ok
}

// Predicates returns the described predicates, sorted.
func (g *Glossary) Predicates() []string {
	out := make([]string, 0, len(g.entries))
	for p := range g.entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Covers checks that the glossary has a compatible entry for every
// predicate of the program, returning the list of problems (missing entries
// or arity mismatches).
func (g *Glossary) Covers(p *ast.Program) []error {
	var errs []error
	arity := map[string]int{}
	record := func(a ast.Atom) {
		if prev, ok := arity[a.Predicate]; ok && prev != a.Arity() {
			errs = append(errs, fmt.Errorf("glossary: predicate %s used with arities %d and %d", a.Predicate, prev, a.Arity()))
			return
		}
		arity[a.Predicate] = a.Arity()
	}
	for _, r := range p.Rules {
		record(r.Head)
		for _, a := range r.Body {
			record(a)
		}
	}
	for _, f := range p.Facts {
		record(f)
	}
	preds := make([]string, 0, len(arity))
	for pred := range arity {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		e, ok := g.entries[pred]
		if !ok {
			errs = append(errs, fmt.Errorf("glossary: no entry for predicate %s", pred))
			continue
		}
		if e.Arity() != arity[pred] {
			errs = append(errs, fmt.Errorf("glossary: entry %s has arity %d, program uses %d", pred, e.Arity(), arity[pred]))
		}
	}
	return errs
}

// String renders the glossary in its parsable text format.
func (g *Glossary) String() string {
	var sb strings.Builder
	for _, pred := range g.Predicates() {
		e := g.entries[pred]
		fmt.Fprintf(&sb, "%s(%s): %s\n", pred, strings.Join(e.Params, ", "), e.Text)
	}
	return sb.String()
}

var lineRe = regexp.MustCompile(`^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*:\s*(.+?)\s*$`)

// Parse reads a glossary from its text format: one entry per line of the
// form "Pred(p1, p2): description with <p1> and <p2>." Blank lines and lines
// starting with % or # are skipped.
func Parse(src string) (*Glossary, error) {
	g := New()
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") || strings.HasPrefix(trimmed, "#") {
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("glossary: line %d: cannot parse %q", i+1, trimmed)
		}
		var params []string
		if strings.TrimSpace(m[2]) != "" {
			for _, p := range strings.Split(m[2], ",") {
				params = append(params, strings.TrimSpace(p))
			}
		}
		if err := g.Add(Entry{Predicate: m[1], Params: params, Text: m[3]}); err != nil {
			return nil, fmt.Errorf("glossary: line %d: %w", i+1, err)
		}
	}
	return g, nil
}

// MustParse is Parse for compile-time constant glossaries.
func MustParse(src string) *Glossary {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

// Draft generates placeholder entries for every program predicate the
// glossary does not describe yet, returning the drafted text in the
// parsable format. Drafts read mechanically ("Own holds for <a1>, <a2> and
// <a3>.") and are meant as a starting point for the domain expert editing
// the data dictionary of a new application — every argument position is
// already tokenized, so a drafted glossary passes Covers and yields
// complete (if clunky) explanations immediately.
func (g *Glossary) Draft(p *ast.Program) string {
	arity := map[string]int{}
	record := func(a ast.Atom) { arity[a.Predicate] = a.Arity() }
	for _, r := range p.Rules {
		record(r.Head)
		for _, a := range r.Body {
			record(a)
		}
		for _, a := range r.Negated {
			record(a)
		}
	}
	for _, f := range p.Facts {
		record(f)
	}
	preds := make([]string, 0, len(arity))
	for pred := range arity {
		if _, ok := g.entries[pred]; !ok {
			preds = append(preds, pred)
		}
	}
	sort.Strings(preds)
	var sb strings.Builder
	for _, pred := range preds {
		n := arity[pred]
		params := make([]string, n)
		tokens := make([]string, n)
		for i := 0; i < n; i++ {
			params[i] = fmt.Sprintf("a%d", i+1)
			tokens[i] = "<" + params[i] + ">"
		}
		text := pred + " holds."
		if n > 0 {
			text = fmt.Sprintf("%s holds for %s.", pred, joinDraft(tokens))
		}
		fmt.Fprintf(&sb, "%s(%s): %s\n", pred, strings.Join(params, ", "), text)
	}
	return sb.String()
}

func joinDraft(items []string) string {
	switch len(items) {
	case 1:
		return items[0]
	default:
		return strings.Join(items[:len(items)-1], ", ") + " and " + items[len(items)-1]
	}
}
