// Package term defines the term algebra of the reasoning engine: constants,
// variables and labelled nulls, following the relational foundations of the
// paper (Section 3): C, V and N are disjoint countably infinite sets of
// constants, variables and nulls.
//
// Constants carry a dynamic type (string, integer, float or boolean) because
// Vadalog programs mix symbolic entities ("IrishBank") with numeric values
// (shares, capital amounts) that participate in comparisons and arithmetic.
//
// The Interner maps terms to dense ValueIDs — the integer currency of the
// join executors — and memoizes each id's numeric interpretation
// (Interner.Numeric), so vectorized comparison passes read two flat arrays
// instead of re-parsing terms. Interning is canonical: Int(3) and Float(3.0)
// share one id, so id equality coincides with term equality.
package term

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the members of the term algebra.
type Kind int

const (
	// KindConstant is a member of the constant domain C.
	KindConstant Kind = iota
	// KindVariable is a member of the variable set V.
	KindVariable
	// KindNull is a labelled null from N, introduced by existential
	// quantification during the chase.
	KindNull
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case KindConstant:
		return "constant"
	case KindVariable:
		return "variable"
	case KindNull:
		return "null"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ConstType is the dynamic type of a constant.
type ConstType int

const (
	// ConstString is a symbolic constant, e.g. a company name.
	ConstString ConstType = iota
	// ConstInt is a 64-bit signed integer constant.
	ConstInt
	// ConstFloat is a 64-bit floating point constant.
	ConstFloat
	// ConstBool is a boolean constant.
	ConstBool
)

// String implements fmt.Stringer for ConstType.
func (t ConstType) String() string {
	switch t {
	case ConstString:
		return "string"
	case ConstInt:
		return "int"
	case ConstFloat:
		return "float"
	case ConstBool:
		return "bool"
	default:
		return fmt.Sprintf("ConstType(%d)", int(t))
	}
}

// Term is a single term: a constant, a variable or a labelled null.
// The zero value is the string constant "".
type Term struct {
	kind Kind

	// name holds the variable name or the null label.
	name string

	ctype ConstType
	s     string
	i     int64
	f     float64
	b     bool
}

// Str returns a string constant.
func Str(s string) Term { return Term{kind: KindConstant, ctype: ConstString, s: s} }

// Int returns an integer constant.
func Int(i int64) Term { return Term{kind: KindConstant, ctype: ConstInt, i: i} }

// Float returns a floating point constant.
func Float(f float64) Term { return Term{kind: KindConstant, ctype: ConstFloat, f: f} }

// Bool returns a boolean constant.
func Bool(b bool) Term { return Term{kind: KindConstant, ctype: ConstBool, b: b} }

// Var returns a variable with the given name.
func Var(name string) Term { return Term{kind: KindVariable, name: name} }

// Null returns a labelled null with the given label.
func Null(label string) Term { return Term{kind: KindNull, name: label} }

// Kind reports which member of the term algebra t is.
func (t Term) Kind() Kind { return t.kind }

// IsConstant reports whether t is a constant.
func (t Term) IsConstant() bool { return t.kind == KindConstant }

// IsVariable reports whether t is a variable.
func (t Term) IsVariable() bool { return t.kind == KindVariable }

// IsNull reports whether t is a labelled null.
func (t Term) IsNull() bool { return t.kind == KindNull }

// Name returns the variable name or null label; it is empty for constants.
func (t Term) Name() string { return t.name }

// ConstType returns the dynamic type of a constant term. It is only
// meaningful when IsConstant reports true.
func (t Term) ConstType() ConstType { return t.ctype }

// StringVal returns the value of a string constant.
func (t Term) StringVal() string { return t.s }

// IntVal returns the value of an integer constant.
func (t Term) IntVal() int64 { return t.i }

// FloatVal returns the value of a float constant.
func (t Term) FloatVal() float64 { return t.f }

// BoolVal returns the value of a boolean constant.
func (t Term) BoolVal() bool { return t.b }

// IsNumeric reports whether t is an int or float constant.
func (t Term) IsNumeric() bool {
	return t.kind == KindConstant && (t.ctype == ConstInt || t.ctype == ConstFloat)
}

// AsFloat returns the numeric value of an int or float constant as float64.
// The second result reports whether the conversion was possible.
func (t Term) AsFloat() (float64, bool) {
	if t.kind != KindConstant {
		return 0, false
	}
	switch t.ctype {
	case ConstInt:
		return float64(t.i), true
	case ConstFloat:
		return t.f, true
	default:
		return 0, false
	}
}

// Equal reports whether two terms are identical members of the algebra.
// Numeric constants of different dynamic types compare equal when their
// numeric values coincide (3 == 3.0), matching comparison semantics in rule
// conditions.
func (t Term) Equal(u Term) bool {
	if t.kind != u.kind {
		return false
	}
	switch t.kind {
	case KindVariable, KindNull:
		return t.name == u.name
	default:
		if t.ctype == u.ctype {
			switch t.ctype {
			case ConstString:
				return t.s == u.s
			case ConstInt:
				return t.i == u.i
			case ConstFloat:
				return t.f == u.f
			case ConstBool:
				return t.b == u.b
			}
		}
		tf, tok := t.AsFloat()
		uf, uok := u.AsFloat()
		return tok && uok && tf == uf
	}
}

// Compare orders two constant terms. It returns a negative value when t < u,
// zero when equal, positive when t > u, and ok=false when the two terms are
// not comparable (different non-numeric types, or non-constants).
func (t Term) Compare(u Term) (cmp int, ok bool) {
	if t.kind != KindConstant || u.kind != KindConstant {
		return 0, false
	}
	if tf, tok := t.AsFloat(); tok {
		if uf, uok := u.AsFloat(); uok {
			switch {
			case tf < uf:
				return -1, true
			case tf > uf:
				return 1, true
			default:
				return 0, true
			}
		}
		return 0, false
	}
	if t.ctype != u.ctype {
		return 0, false
	}
	switch t.ctype {
	case ConstString:
		return strings.Compare(t.s, u.s), true
	case ConstBool:
		tb, ub := 0, 0
		if t.b {
			tb = 1
		}
		if u.b {
			ub = 1
		}
		return tb - ub, true
	}
	return 0, false
}

// Key returns a canonical string key for the term, suitable for use in maps
// and for fact interning. Keys of distinct terms are distinct, except that
// numerically-equal int and float constants share a key.
func (t Term) Key() string {
	switch t.kind {
	case KindVariable:
		return "?" + t.name
	case KindNull:
		return "~" + t.name
	default:
		switch t.ctype {
		case ConstString:
			return "s:" + t.s
		case ConstBool:
			if t.b {
				return "b:true"
			}
			return "b:false"
		default:
			f, _ := t.AsFloat()
			if f == float64(int64(f)) {
				return "n:" + strconv.FormatInt(int64(f), 10)
			}
			return "n:" + strconv.FormatFloat(f, 'g', -1, 64)
		}
	}
}

// String renders the term in Vadalog concrete syntax: quoted strings,
// bare numbers, variables as their names, nulls with a ν prefix.
func (t Term) String() string {
	switch t.kind {
	case KindVariable:
		return t.name
	case KindNull:
		return "ν" + t.name
	default:
		return t.Display()
	}
}

// Display renders a constant without quotes, as it should appear inside a
// natural-language explanation ("IrishBank", "57", "0.5"). Variables render
// as <name> placeholders and nulls with their label, so Display is total.
func (t Term) Display() string {
	switch t.kind {
	case KindVariable:
		return "<" + t.name + ">"
	case KindNull:
		return "ν" + t.name
	}
	switch t.ctype {
	case ConstString:
		return t.s
	case ConstInt:
		return strconv.FormatInt(t.i, 10)
	case ConstFloat:
		if t.f == float64(int64(t.f)) {
			return strconv.FormatInt(int64(t.f), 10)
		}
		// Round to 10 significant digits so accumulated binary error
		// (0.05+0.165 = 0.21500000000000002) does not leak into
		// explanations; Key() keeps full precision for fact identity.
		s := strconv.FormatFloat(t.f, 'g', 10, 64)
		if strings.Contains(s, ".") && !strings.ContainsAny(s, "eE") {
			s = strings.TrimRight(s, "0")
			s = strings.TrimSuffix(s, ".")
		}
		return s
	case ConstBool:
		return strconv.FormatBool(t.b)
	}
	return ""
}

// Quote renders the term in parsable concrete syntax: string constants are
// double-quoted, everything else matches Display.
func (t Term) Quote() string {
	if t.kind == KindConstant && t.ctype == ConstString {
		return strconv.Quote(t.s)
	}
	return t.Display()
}

// Substitution maps variable names to terms. It is the homomorphism θ applied
// during a chase step, restricted to the variables of one rule.
type Substitution map[string]Term

// Apply resolves t under s: variables bound in s are replaced by their
// binding; everything else is returned unchanged.
func (s Substitution) Apply(t Term) Term {
	if t.kind == KindVariable {
		if bound, ok := s[t.name]; ok {
			return bound
		}
	}
	return t
}

// Bind extends the substitution with name→t. It returns false when name is
// already bound to a different term (the extension is inconsistent).
func (s Substitution) Bind(name string, t Term) bool {
	if prev, ok := s[name]; ok {
		return prev.Equal(t)
	}
	s[name] = t
	return true
}

// Clone returns an independent copy of the substitution.
func (s Substitution) Clone() Substitution {
	c := make(Substitution, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Merge returns a new substitution combining s and o, or ok=false when they
// disagree on some variable.
func (s Substitution) Merge(o Substitution) (Substitution, bool) {
	out := s.Clone()
	for k, v := range o {
		if !out.Bind(k, v) {
			return nil, false
		}
	}
	return out, true
}
