package term

import (
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	tests := []struct {
		name     string
		tm       Term
		kind     Kind
		isConst  bool
		isVar    bool
		isNull   bool
		wantName string
	}{
		{"string constant", Str("A"), KindConstant, true, false, false, ""},
		{"int constant", Int(7), KindConstant, true, false, false, ""},
		{"float constant", Float(0.5), KindConstant, true, false, false, ""},
		{"bool constant", Bool(true), KindConstant, true, false, false, ""},
		{"variable", Var("X"), KindVariable, false, true, false, "X"},
		{"null", Null("n1"), KindNull, false, false, true, "n1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tm.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.tm.IsConstant(); got != tt.isConst {
				t.Errorf("IsConstant() = %v, want %v", got, tt.isConst)
			}
			if got := tt.tm.IsVariable(); got != tt.isVar {
				t.Errorf("IsVariable() = %v, want %v", got, tt.isVar)
			}
			if got := tt.tm.IsNull(); got != tt.isNull {
				t.Errorf("IsNull() = %v, want %v", got, tt.isNull)
			}
			if got := tt.tm.Name(); got != tt.wantName {
				t.Errorf("Name() = %q, want %q", got, tt.wantName)
			}
		})
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Term
		want bool
	}{
		{"same strings", Str("A"), Str("A"), true},
		{"different strings", Str("A"), Str("B"), false},
		{"same ints", Int(3), Int(3), true},
		{"different ints", Int(3), Int(4), false},
		{"int equals numerically-equal float", Int(3), Float(3.0), true},
		{"float equals numerically-equal int", Float(7), Int(7), true},
		{"int not equal non-integral float", Int(3), Float(3.5), false},
		{"string not equal int", Str("3"), Int(3), false},
		{"bool true", Bool(true), Bool(true), true},
		{"bool mixed", Bool(true), Bool(false), false},
		{"same variable", Var("X"), Var("X"), true},
		{"different variables", Var("X"), Var("Y"), false},
		{"variable not equal constant", Var("X"), Str("X"), false},
		{"same null", Null("n"), Null("n"), true},
		{"null not equal variable", Null("n"), Var("n"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal(%v, %v) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Term
		wantCmp int
		wantOK  bool
	}{
		{"int less", Int(3), Int(5), -1, true},
		{"int greater", Int(5), Int(3), 1, true},
		{"int equal", Int(5), Int(5), 0, true},
		{"mixed numeric", Int(3), Float(3.5), -1, true},
		{"float vs int", Float(10), Int(2), 1, true},
		{"strings", Str("abc"), Str("abd"), -1, true},
		{"string equal", Str("x"), Str("x"), 0, true},
		{"bools", Bool(false), Bool(true), -1, true},
		{"string vs int incomparable", Str("a"), Int(1), 0, false},
		{"variable incomparable", Var("X"), Int(1), 0, false},
		{"null incomparable", Null("n"), Null("n"), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cmp, ok := tt.a.Compare(tt.b)
			if ok != tt.wantOK {
				t.Fatalf("Compare ok = %v, want %v", ok, tt.wantOK)
			}
			if !ok {
				return
			}
			if sign(cmp) != tt.wantCmp {
				t.Errorf("Compare = %d, want sign %d", cmp, tt.wantCmp)
			}
		})
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestKeyDistinguishesKinds(t *testing.T) {
	terms := []Term{
		Str("A"), Str("B"), Str("3"), Int(3), Float(3.5), Bool(true), Bool(false),
		Var("A"), Null("A"), Str(""), Var(""),
	}
	seen := map[string]Term{}
	for _, tm := range terms {
		k := tm.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v and %v both map to %q", prev, tm, k)
		}
		seen[k] = tm
	}
}

func TestKeyIntFloatCoincide(t *testing.T) {
	if Int(3).Key() != Float(3.0).Key() {
		t.Errorf("Int(3).Key() = %q, Float(3).Key() = %q; want equal", Int(3).Key(), Float(3.0).Key())
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("Int(3) and Float(3.5) share a key")
	}
}

func TestDisplayAndString(t *testing.T) {
	tests := []struct {
		tm          Term
		wantDisplay string
		wantQuote   string
	}{
		{Str("IrishBank"), "IrishBank", `"IrishBank"`},
		{Int(57), "57", "57"},
		{Float(0.5), "0.5", "0.5"},
		{Float(14000000), "14000000", "14000000"},
		{Bool(true), "true", "true"},
		{Var("X"), "<X>", "<X>"},
		{Null("z1"), "νz1", "νz1"},
	}
	for _, tt := range tests {
		if got := tt.tm.Display(); got != tt.wantDisplay {
			t.Errorf("Display(%v) = %q, want %q", tt.tm, got, tt.wantDisplay)
		}
		if got := tt.tm.Quote(); got != tt.wantQuote {
			t.Errorf("Quote(%v) = %q, want %q", tt.tm, got, tt.wantQuote)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := Int(4).AsFloat(); !ok || f != 4 {
		t.Errorf("Int(4).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := Str("4").AsFloat(); ok {
		t.Error("Str.AsFloat() succeeded")
	}
	if _, ok := Var("X").AsFloat(); ok {
		t.Error("Var.AsFloat() succeeded")
	}
}

func TestSubstitutionApply(t *testing.T) {
	s := Substitution{"X": Str("A"), "Y": Int(3)}
	if got := s.Apply(Var("X")); !got.Equal(Str("A")) {
		t.Errorf("Apply(X) = %v", got)
	}
	if got := s.Apply(Var("Z")); !got.Equal(Var("Z")) {
		t.Errorf("Apply(unbound Z) = %v, want Z unchanged", got)
	}
	if got := s.Apply(Str("k")); !got.Equal(Str("k")) {
		t.Errorf("Apply(constant) = %v, want unchanged", got)
	}
}

func TestSubstitutionBind(t *testing.T) {
	s := Substitution{}
	if !s.Bind("X", Str("A")) {
		t.Fatal("first Bind failed")
	}
	if !s.Bind("X", Str("A")) {
		t.Error("re-binding same value failed")
	}
	if s.Bind("X", Str("B")) {
		t.Error("conflicting Bind succeeded")
	}
	if !s.Bind("Y", Int(3)) {
		t.Error("independent Bind failed")
	}
}

func TestSubstitutionMerge(t *testing.T) {
	a := Substitution{"X": Str("A"), "Y": Int(1)}
	b := Substitution{"Y": Int(1), "Z": Str("C")}
	merged, ok := a.Merge(b)
	if !ok {
		t.Fatal("compatible Merge failed")
	}
	if len(merged) != 3 {
		t.Errorf("merged size = %d, want 3", len(merged))
	}
	c := Substitution{"X": Str("DIFFERENT")}
	if _, ok := a.Merge(c); ok {
		t.Error("conflicting Merge succeeded")
	}
	// Merge must not mutate its receiver.
	if len(a) != 2 {
		t.Errorf("Merge mutated receiver: %v", a)
	}
}

func TestSubstitutionClone(t *testing.T) {
	a := Substitution{"X": Str("A")}
	c := a.Clone()
	c["X"] = Str("B")
	if !a["X"].Equal(Str("A")) {
		t.Error("Clone is not independent")
	}
}

// Property: Equal is reflexive for any int/float/string constant, and Key
// equality coincides with Equal for constants.
func TestEqualKeyConsistencyProperty(t *testing.T) {
	f := func(i int64, g float64, s string) bool {
		terms := []Term{Int(i), Float(g), Str(s)}
		for _, a := range terms {
			if !a.Equal(a) {
				return false
			}
			for _, b := range terms {
				if a.Equal(b) != (a.Key() == b.Key()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric over integer constants.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := Int(a).Compare(Int(b))
		y, oky := Int(b).Compare(Int(a))
		return okx && oky && sign(x) == -sign(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindAndConstTypeStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindConstant: "constant", KindVariable: "variable", KindNull: "null", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	for ct, want := range map[ConstType]string{
		ConstString: "string", ConstInt: "int", ConstFloat: "float", ConstBool: "bool", ConstType(9): "ConstType(9)",
	} {
		if got := ct.String(); got != want {
			t.Errorf("ConstType(%d).String() = %q, want %q", ct, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	if Str("x").StringVal() != "x" || Str("x").ConstType() != ConstString {
		t.Error("string accessors")
	}
	if Int(7).IntVal() != 7 || Int(7).ConstType() != ConstInt {
		t.Error("int accessors")
	}
	if Float(2.5).FloatVal() != 2.5 || Float(2.5).ConstType() != ConstFloat {
		t.Error("float accessors")
	}
	if !Bool(true).BoolVal() || Bool(true).ConstType() != ConstBool {
		t.Error("bool accessors")
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("1").IsNumeric() || Var("x").IsNumeric() {
		t.Error("IsNumeric")
	}
}

func TestTermString(t *testing.T) {
	tests := []struct {
		tm   Term
		want string
	}{
		{Var("X"), "X"},
		{Null("n1"), "νn1"},
		{Str("abc"), "abc"},
		{Int(3), "3"},
		{Bool(false), "false"},
	}
	for _, tt := range tests {
		if got := tt.tm.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.tm, got, tt.want)
		}
	}
}

func TestCompareBoolAndMixed(t *testing.T) {
	if c, ok := Bool(true).Compare(Bool(true)); !ok || c != 0 {
		t.Errorf("bool self compare = %d, %v", c, ok)
	}
	if _, ok := Bool(true).Compare(Str("true")); ok {
		t.Error("bool vs string comparable")
	}
	if _, ok := Int(1).Compare(Str("1")); ok {
		t.Error("int vs string comparable")
	}
	if _, ok := Str("a").Compare(Int(1)); ok {
		t.Error("string vs int comparable")
	}
}

func TestDisplayScientificFloat(t *testing.T) {
	// Very large non-integral floats fall back to scientific notation and
	// must not be trailing-zero-trimmed into nonsense.
	huge := Float(1.5e21)
	if got := huge.Display(); got == "" || got[len(got)-1] == '.' {
		t.Errorf("Display(1.5e21) = %q", got)
	}
}
