package term

// Value interning (dictionary encoding). The chase's compiled-plan engine
// stores facts as flat []ValueID rows and joins by comparing dense integer
// ids instead of hashing canonical term strings; the Interner is the
// per-store dictionary behind that representation. Production Datalog
// engines (Nemo, Vadalog) attribute much of their join throughput to
// exactly this encoding.

// ValueID is a dense integer handle for an interned ground term. Ids are
// assigned in interning order starting at 0 and are stable for the lifetime
// of the Interner. Two ground terms receive the same ValueID exactly when
// their canonical keys coincide (Term.Key) — in particular, numerically
// equal int and float constants share an id, mirroring Term.Equal's
// comparison semantics, so id equality is term equality.
type ValueID int32

// NoValue is the sentinel for an unbound binding-frame slot; it is never a
// valid interned id.
const NoValue ValueID = -1

// Interner is a bidirectional dictionary between ground terms and dense
// ValueIDs. The zero value is not usable; call NewInterner.
//
// An Interner is not synchronized. Intern writes; Lookup, Value and Len only
// read. The fact store confines Intern calls to its single-threaded write
// phase, so the chase's parallel join workers may call the read methods
// concurrently (see database.Store's concurrency contract).
type Interner struct {
	byKey map[string]ValueID
	terms []Term
	// nums caches the float64 value of numeric ids (parallel to terms);
	// isNum marks which entries are valid. The batch join executor
	// (internal/chase/batch.go) evaluates numeric comparisons over whole
	// candidate runs through this cache instead of materializing a Term per
	// candidate.
	nums  []float64
	isNum []bool
}

// NewInterner returns an empty dictionary.
func NewInterner() *Interner {
	return &Interner{byKey: make(map[string]ValueID)}
}

// Intern returns the id of t, assigning the next dense id if t was not seen
// before. The first term interned under a key becomes the representative
// returned by Value; for key-sharing numeric terms (3 and 3.0) the
// representative renders identically to every term it stands for.
func (in *Interner) Intern(t Term) ValueID {
	key := t.Key()
	if id, ok := in.byKey[key]; ok {
		return id
	}
	id := ValueID(len(in.terms))
	in.byKey[key] = id
	in.terms = append(in.terms, t)
	f, ok := t.AsFloat()
	in.nums = append(in.nums, f)
	in.isNum = append(in.isNum, ok)
	return id
}

// Numeric returns the float64 value of an interned id when its
// representative term is an int or float constant (ok=false otherwise). It is
// Value(id).AsFloat() as two array loads — the form the batch executor's
// vectorized condition filters need. Key-sharing numeric terms (3 and 3.0)
// have the same float value, so the cache is representative-independent.
func (in *Interner) Numeric(id ValueID) (float64, bool) {
	return in.nums[id], in.isNum[id]
}

// Lookup returns the id of t without interning. ok is false when t was never
// interned — no stored value can equal it.
func (in *Interner) Lookup(t Term) (ValueID, bool) {
	id, ok := in.byKey[t.Key()]
	return id, ok
}

// Value returns the representative term of an interned id. It panics on an
// out-of-range id, which always indicates a caller bug.
func (in *Interner) Value(id ValueID) Term { return in.terms[id] }

// Len returns the number of distinct interned values.
func (in *Interner) Len() int { return len(in.terms) }
