package term

import "testing"

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern(Str("IrishBank"))
	b := in.Intern(Int(3))
	c := in.Intern(Str("HSBC"))
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("ids not dense in interning order: %d %d %d", a, b, c)
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	if got := in.Intern(Str("IrishBank")); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if in.Len() != 3 {
		t.Errorf("re-interning grew the dictionary to %d", in.Len())
	}
}

// Id equality must coincide with Term.Equal: numerically equal int and float
// constants share an id, distinct types and values do not.
func TestInternerKeySemantics(t *testing.T) {
	in := NewInterner()
	i3 := in.Intern(Int(3))
	f3 := in.Intern(Float(3.0))
	if i3 != f3 {
		t.Errorf("Int(3) and Float(3.0) got distinct ids %d, %d", i3, f3)
	}
	s3 := in.Intern(Str("3"))
	if s3 == i3 {
		t.Errorf("Str(\"3\") shares id %d with Int(3)", s3)
	}
	f35 := in.Intern(Float(3.5))
	if f35 == i3 {
		t.Errorf("Float(3.5) shares id %d with Int(3)", f35)
	}
	n := in.Intern(Null("z1"))
	if n == s3 || n == i3 {
		t.Errorf("null shares an id with a constant")
	}
	if b, tr := in.Intern(Bool(false)), in.Intern(Bool(true)); b == tr {
		t.Errorf("true and false share id %d", b)
	}
}

func TestInternerLookupValue(t *testing.T) {
	in := NewInterner()
	if _, ok := in.Lookup(Str("absent")); ok {
		t.Fatal("Lookup of never-interned term succeeded")
	}
	id := in.Intern(Str("x"))
	got, ok := in.Lookup(Str("x"))
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
	if v := in.Value(id); !v.Equal(Str("x")) {
		t.Fatalf("Value(%d) = %v, want x", id, v)
	}
	// The representative of key-sharing numerics renders identically.
	nid := in.Intern(Int(7))
	in.Intern(Float(7.0))
	if v := in.Value(nid); v.Display() != "7" {
		t.Fatalf("representative renders as %q, want \"7\"", v.Display())
	}
}

// TestInternerNumericCache: Numeric is Value(id).AsFloat() for every id —
// including key-sharing int/float pairs, whose shared entry is
// representative-independent — and ok=false for non-numeric terms.
func TestInternerNumericCache(t *testing.T) {
	in := NewInterner()
	terms := []Term{Int(3), Float(3.0), Float(2.5), Str("x"), Bool(true), Null("z1"), Int(-7)}
	for _, tm := range terms {
		id := in.Intern(tm)
		gotF, gotOK := in.Numeric(id)
		wantF, wantOK := in.Value(id).AsFloat()
		if gotOK != wantOK || (wantOK && gotF != wantF) {
			t.Errorf("Numeric(%v) = (%v, %v), want (%v, %v)", tm, gotF, gotOK, wantF, wantOK)
		}
	}
	i3 := in.Intern(Int(3))
	f3 := in.Intern(Float(3.0))
	if i3 != f3 {
		t.Fatalf("3 and 3.0 interned to different ids: %d vs %d", i3, f3)
	}
	if f, ok := in.Numeric(i3); !ok || f != 3.0 {
		t.Fatalf("Numeric(shared 3) = (%v, %v)", f, ok)
	}
}
