// Package loadgen is the serving-tier load harness: it opens a large
// population of concurrent sessions against a worker or routed tier (any
// base URL speaking the serve protocol) and drives a mixed
// read/explain/write workload over them, measuring per-class latency
// percentiles and the durability work (restores, snapshot restores,
// compactions) the churn induced.
//
// The session population deliberately exceeds the server's resident LRU
// capacity: most sessions are cold at any instant, so steady-state traffic
// continuously evicts and restores them — the regime the snapshot and
// compaction machinery exists for. "Concurrent sessions" means every one
// of them is addressable at any moment, not that every engine is resident.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target: a single worker or a router.
	BaseURL string
	// Sessions is the concurrent-session population to open.
	Sessions int
	// Ops is the steady-state operation count after the open phase.
	Ops int
	// Concurrency is the client goroutine count (0 = 64).
	Concurrency int
	// ReadPct/ExplainPct/WritePct is the steady-state mix in percent
	// (zero-valued config = 70/20/10). Must sum to 100.
	ReadPct, ExplainPct, WritePct int
	// Seed drives session selection (0 = 1).
	Seed int64
	// IDPrefix namespaces the assigned session ids (0 = "ld"); reruns
	// against one durable directory need distinct prefixes, since session
	// ids are never reused.
	IDPrefix string
	// App and OpenFacts shape each session: the application and its
	// opening extensional facts (defaults: company-control owning chain).
	App       string
	OpenFacts string
	// ExplainQuery is the /explain target fact (default Control("X","Y"),
	// derivable from the default OpenFacts).
	ExplainQuery string
	// Client overrides the HTTP client (default: pooled transport sized to
	// Concurrency).
	Client *http.Client
}

// Percentiles are latency quantiles in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50Ms"`
	P90 float64 `json:"p90Ms"`
	P99 float64 `json:"p99Ms"`
	Max float64 `json:"maxMs"`
}

// ClassReport is one operation class's outcome.
type ClassReport struct {
	Ops     int         `json:"ops"`
	Errors  int         `json:"errors"`
	Latency Percentiles `json:"latency"`
}

// Counters is the durability-work delta the run induced on the target
// (summed across workers when the target is a router).
type Counters struct {
	Restores         uint64 `json:"restores"`
	SnapshotRestores uint64 `json:"snapshotRestores"`
	SnapshotWrites   uint64 `json:"snapshotWrites"`
	Compactions      uint64 `json:"compactions"`
	TailReplays      uint64 `json:"tailReplays"`
}

// RestoreLatency is the target's per-restore wall-time summary at the end
// of the run (cumulative since worker start). For a routed target the
// counts are summed across workers and each quantile is the worst
// worker's — the conservative view of restore-convoy behavior.
type RestoreLatency struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50Ms"`
	P90   float64 `json:"p90Ms"`
	P99   float64 `json:"p99Ms"`
	Max   float64 `json:"maxMs"`
}

// RouterCounters is the routing-layer delta the run induced, present only
// when the target is a router. Retried and Failovers are the double-hop
// work the session-location cache exists to avoid; the cache counters and
// rebalance counters expose how the new machinery behaved under load.
type RouterCounters struct {
	Requests              uint64 `json:"requests"`
	Retried               uint64 `json:"retried"`
	Failovers             uint64 `json:"failovers"`
	LocationHits          uint64 `json:"locationHits"`
	LocationMisses        uint64 `json:"locationMisses"`
	LocationInvalidations uint64 `json:"locationInvalidations"`
	Rebalances            uint64 `json:"rebalances"`
	MigratedSessions      uint64 `json:"migratedSessions"`
}

// Report is a completed run.
type Report struct {
	Sessions    int `json:"sessions"`
	Concurrency int `json:"concurrency"`

	Open    ClassReport `json:"open"`
	Read    ClassReport `json:"read"`
	Explain ClassReport `json:"explain"`
	Write   ClassReport `json:"write"`

	// OpenWallSeconds and WallSeconds time the two phases; Throughput is
	// steady-state operations per second.
	OpenWallSeconds float64 `json:"openWallSeconds"`
	WallSeconds     float64 `json:"wallSeconds"`
	Throughput      float64 `json:"throughputOpsPerSec"`

	Counters Counters `json:"counters"`
	// RestoreLatency is the end-of-run restore-latency summary (see the
	// type's doc for routed-target semantics).
	RestoreLatency RestoreLatency `json:"restoreLatency"`
	// Router is the routing-layer delta; nil when the target is a worker.
	Router *RouterCounters `json:"router,omitempty"`
}

func (c *Config) defaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL required")
	}
	if c.Sessions <= 0 || c.Ops < 0 {
		return fmt.Errorf("loadgen: Sessions must be positive")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	if c.ReadPct == 0 && c.ExplainPct == 0 && c.WritePct == 0 {
		c.ReadPct, c.ExplainPct, c.WritePct = 70, 20, 10
	}
	if c.ReadPct+c.ExplainPct+c.WritePct != 100 {
		return fmt.Errorf("loadgen: mix %d/%d/%d does not sum to 100", c.ReadPct, c.ExplainPct, c.WritePct)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "ld"
	}
	if c.App == "" {
		c.App = "company-control"
		if c.OpenFacts == "" {
			c.OpenFacts = `Own("X","Y",0.6).`
		}
		if c.ExplainQuery == "" {
			c.ExplainQuery = `Control("X","Y")`
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: c.Concurrency,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return nil
}

// lats is one class's latency sink: per-worker shards, merged at the end,
// so recording is contention-free.
type lats struct {
	shards [][]float64 // milliseconds
	errs   atomic.Uint64
}

func newLats(workers int) *lats {
	return &lats{shards: make([][]float64, workers)}
}

func (l *lats) record(worker int, d time.Duration) {
	l.shards[worker] = append(l.shards[worker], float64(d)/float64(time.Millisecond))
}

func (l *lats) report() ClassReport {
	var all []float64
	for _, s := range l.shards {
		all = append(all, s...)
	}
	sort.Float64s(all)
	cr := ClassReport{Ops: len(all), Errors: int(l.errs.Load())}
	if len(all) == 0 {
		return cr
	}
	q := func(p float64) float64 { return all[int(p*float64(len(all)-1))] }
	cr.Latency = Percentiles{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: all[len(all)-1]}
	return cr
}

// Run executes the workload: open Sessions sessions, then Ops mixed
// operations against the population, uniformly random session choice.
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	before, err := fetchCounters(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial stats: %w", err)
	}

	ids := make([]string, cfg.Sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", cfg.IDPrefix, i)
	}
	openReq := func(id string) string {
		b, _ := json.Marshal(map[string]string{"app": cfg.App, "facts": cfg.OpenFacts, "assignId": id})
		return string(b)
	}
	explainPath := "/explain?query=" + url.QueryEscape(cfg.ExplainQuery) + "&session="

	openL := newLats(cfg.Concurrency)
	var next atomic.Int64
	openStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				body := openReq(ids[i])
				start := time.Now()
				if code, err := post(cfg.Client, cfg.BaseURL+"/reason", body); err != nil || code != http.StatusOK {
					openL.errs.Add(1)
					continue
				}
				openL.record(w, time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	openWall := time.Since(openStart)
	openReport := openL.report()
	if openReport.Errors > cfg.Sessions/10 {
		return nil, fmt.Errorf("loadgen: %d/%d session opens failed", openReport.Errors, cfg.Sessions)
	}

	readL, explainL, writeL := newLats(cfg.Concurrency), newLats(cfg.Concurrency), newLats(cfg.Concurrency)
	var opNext, writeSeq atomic.Int64
	steadyStart := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for {
				if int(opNext.Add(1)) > cfg.Ops {
					return
				}
				id := ids[rng.Intn(len(ids))]
				roll := rng.Intn(100)
				start := time.Now()
				switch {
				case roll < cfg.ReadPct:
					code, err := post(cfg.Client, cfg.BaseURL+"/reason", fmt.Sprintf(`{"session":%q}`, id))
					if err != nil || code != http.StatusOK {
						readL.errs.Add(1)
					} else {
						readL.record(w, time.Since(start))
					}
				case roll < cfg.ReadPct+cfg.ExplainPct:
					code, err := get(cfg.Client, cfg.BaseURL+explainPath+url.QueryEscape(id))
					if err != nil || code != http.StatusOK {
						explainL.errs.Add(1)
					} else {
						explainL.record(w, time.Since(start))
					}
				default:
					n := writeSeq.Add(1)
					body := fmt.Sprintf(`{"session":%q,"add":"Own(\"Y\",\"n%d\",0.8)."}`, id, n)
					code, err := post(cfg.Client, cfg.BaseURL+"/facts", body)
					if err != nil || code != http.StatusOK {
						writeL.errs.Add(1)
					} else {
						writeL.record(w, time.Since(start))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(steadyStart)

	after, err := fetchCounters(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final stats: %w", err)
	}
	rep := &Report{
		Sessions:        cfg.Sessions,
		Concurrency:     cfg.Concurrency,
		Open:            openReport,
		Read:            readL.report(),
		Explain:         explainL.report(),
		Write:           writeL.report(),
		OpenWallSeconds: openWall.Seconds(),
		WallSeconds:     wall.Seconds(),
		Counters: Counters{
			Restores:         after.Counters.Restores - before.Counters.Restores,
			SnapshotRestores: after.Counters.SnapshotRestores - before.Counters.SnapshotRestores,
			SnapshotWrites:   after.Counters.SnapshotWrites - before.Counters.SnapshotWrites,
			Compactions:      after.Counters.Compactions - before.Counters.Compactions,
			TailReplays:      after.Counters.TailReplays - before.Counters.TailReplays,
		},
		RestoreLatency: after.Restore,
	}
	if after.Router != nil {
		rc := *after.Router
		if before.Router != nil {
			rc.Requests -= before.Router.Requests
			rc.Retried -= before.Router.Retried
			rc.Failovers -= before.Router.Failovers
			rc.LocationHits -= before.Router.LocationHits
			rc.LocationMisses -= before.Router.LocationMisses
			rc.LocationInvalidations -= before.Router.LocationInvalidations
			rc.Rebalances -= before.Router.Rebalances
			rc.MigratedSessions -= before.Router.MigratedSessions
		}
		rep.Router = &rc
	}
	if wall > 0 {
		rep.Throughput = float64(cfg.Ops) / wall.Seconds()
	}
	steadyErrs := rep.Read.Errors + rep.Explain.Errors + rep.Write.Errors
	if cfg.Ops > 0 && steadyErrs > cfg.Ops/10 {
		return nil, fmt.Errorf("loadgen: %d/%d steady-state operations failed", steadyErrs, cfg.Ops)
	}
	return rep, nil
}

func post(c *http.Client, url, body string) (int, error) {
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func get(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// targetStats is one /stats read: the write-path counters, the restore
// latency summary, and (for routed targets) the router's own counters.
type targetStats struct {
	Counters Counters
	Restore  RestoreLatency
	Router   *RouterCounters
}

// writePathDoc is the slice of a worker's writePath section loadgen reads.
type writePathDoc struct {
	Counters
	RestoreLatency RestoreLatency `json:"restoreLatency"`
}

// fetchCounters reads the write-path counters from the target's /stats.
// A worker exposes writePath directly; a router nests each worker's raw
// stats document under workers (counters summed, restore quantiles taken
// from the worst worker) plus its own counters under router.
func fetchCounters(c *http.Client, base string) (targetStats, error) {
	resp, err := c.Get(base + "/stats")
	if err != nil {
		return targetStats{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return targetStats{}, err
	}
	var doc struct {
		WritePath *writePathDoc `json:"writePath"`
		Router    *struct {
			Requests      uint64 `json:"requests"`
			Retried       uint64 `json:"retried"`
			Failovers     uint64 `json:"failovers"`
			LocationCache struct {
				Hits          uint64 `json:"hits"`
				Misses        uint64 `json:"misses"`
				Invalidations uint64 `json:"invalidations"`
			} `json:"locationCache"`
			Rebalances       uint64 `json:"rebalances"`
			MigratedSessions uint64 `json:"migratedSessions"`
		} `json:"router"`
		Workers map[string]json.RawMessage `json:"workers"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return targetStats{}, err
	}
	if doc.WritePath != nil {
		return targetStats{Counters: doc.WritePath.Counters, Restore: doc.WritePath.RestoreLatency}, nil
	}
	var st targetStats
	if doc.Router != nil {
		st.Router = &RouterCounters{
			Requests:              doc.Router.Requests,
			Retried:               doc.Router.Retried,
			Failovers:             doc.Router.Failovers,
			LocationHits:          doc.Router.LocationCache.Hits,
			LocationMisses:        doc.Router.LocationCache.Misses,
			LocationInvalidations: doc.Router.LocationCache.Invalidations,
			Rebalances:            doc.Router.Rebalances,
			MigratedSessions:      doc.Router.MigratedSessions,
		}
	}
	for _, wraw := range doc.Workers {
		var wdoc struct {
			WritePath *writePathDoc `json:"writePath"`
		}
		// A worker the router cannot reach shows up as {"error": ...}; its
		// counters are unknowable, so it contributes zero rather than
		// aborting the run. Same for workers running without a WAL.
		if err := json.Unmarshal(wraw, &wdoc); err != nil || wdoc.WritePath == nil {
			continue
		}
		st.Counters.Restores += wdoc.WritePath.Restores
		st.Counters.SnapshotRestores += wdoc.WritePath.SnapshotRestores
		st.Counters.SnapshotWrites += wdoc.WritePath.SnapshotWrites
		st.Counters.Compactions += wdoc.WritePath.Compactions
		st.Counters.TailReplays += wdoc.WritePath.TailReplays
		st.Restore.Count += wdoc.WritePath.RestoreLatency.Count
		st.Restore.P50 = max(st.Restore.P50, wdoc.WritePath.RestoreLatency.P50)
		st.Restore.P90 = max(st.Restore.P90, wdoc.WritePath.RestoreLatency.P90)
		st.Restore.P99 = max(st.Restore.P99, wdoc.WritePath.RestoreLatency.P99)
		st.Restore.Max = max(st.Restore.Max, wdoc.WritePath.RestoreLatency.Max)
	}
	return st, nil
}
