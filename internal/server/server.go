// Package server exposes the explanation pipeline as a small JSON-over-HTTP
// service, mirroring the paper's deployment context: analysts interact with
// the Knowledge Graph through a front-end (its reference [10], KG-Roar, is
// an interactive graph environment) and request explanations for derived
// facts on demand. The service holds compiled applications; reasoning
// results are kept per session so repeated explanation queries do not rerun
// the chase.
//
// Endpoints (all JSON):
//
//	GET  /apps                        list the deployed applications
//	POST /reason                      {"app": ..., "facts": "...", "scenario": bool} -> {"session": id, answers}
//	GET  /explain?session=S&query=Q   explanation of one derived fact
//	GET  /paths?app=A                 the reasoning paths of an application
//	GET  /stats                       cache occupancy and hit/miss/eviction counters
//
// Everything stays inside the process: no data leaves, matching the paper's
// confidentiality requirement.
//
// # Serving caches
//
// The server is a bounded memoization layer over the pipeline: sessions
// live in an LRU (capacity Options.MaxSessions) so state cannot grow
// without bound under heavy traffic, rendered explanation responses are
// memoized per (session, query) in a second LRU (Options.MaxExplanations),
// and every pipeline runs with the core result cache and explanation memo
// enabled, so identical /reason payloads share one chase run and repeated
// /explain queries skip proof extraction, mapping and verbalization.
// Cached responses are byte-identical to uncached ones — every cached
// object is deterministic and immutable — and all caches expose their
// counters on /stats.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/apps"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/parser"
)

// Server is the HTTP handler set. Create with New.
type Server struct {
	// pipes is immutable after construction.
	pipes map[string]*core.Pipeline
	// sessions is the bounded session store: least recently used sessions
	// are evicted at capacity (their immutable chase results are shared
	// with the pipeline result cache, so eviction only drops the handle).
	sessions *lru.Cache[string, *session]
	// explanations memoizes rendered /explain responses per
	// (session, query). Responses are immutable once cached.
	explanations *lru.Cache[string, *explainResponse]

	// mu guards nextID.
	mu     sync.Mutex
	nextID int
}

type session struct {
	app    string
	result *chase.Result
}

// Default serving-layer capacities; see Options.
const (
	DefaultMaxSessions     = 256
	DefaultMaxExplanations = 2048
	DefaultResultCacheSize = 64
)

// Options configure server construction.
type Options struct {
	// ChaseWorkers is the chase worker-pool size used by every /reason
	// request (chase.Options.Workers): 0 = sequential, negative = all
	// cores. Responses are identical at any setting.
	ChaseWorkers int
	// MaxSessions bounds the session store; at capacity the least
	// recently used session is evicted and later /explain calls against
	// it answer 404. 0 selects DefaultMaxSessions; negative values are
	// clamped to 1.
	MaxSessions int
	// MaxExplanations bounds the rendered-explanation cache. 0 selects
	// DefaultMaxExplanations; negative values are clamped to 1.
	MaxExplanations int
	// ResultCacheSize is handed to every pipeline as
	// core.Config.ResultCacheSize: identical /reason payloads for one app
	// share a cached chase run (with singleflight deduplication). 0
	// selects DefaultResultCacheSize; negative values are clamped to 1.
	ResultCacheSize int
}

// New compiles every bundled application into a server with default
// options.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions compiles every bundled application into a server.
func NewWithOptions(opts Options) (*Server, error) {
	if opts.MaxSessions == 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.MaxExplanations == 0 {
		opts.MaxExplanations = DefaultMaxExplanations
	}
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	s := &Server{
		pipes:        map[string]*core.Pipeline{},
		sessions:     lru.New[string, *session](opts.MaxSessions),
		explanations: lru.New[string, *explainResponse](opts.MaxExplanations),
	}
	for _, a := range apps.All() {
		p, err := a.Pipeline(core.Config{
			Chase:                chase.Options{Workers: opts.ChaseWorkers},
			ResultCacheSize:      opts.ResultCacheSize,
			ExplanationCacheSize: opts.MaxExplanations,
		})
		if err != nil {
			return nil, fmt.Errorf("server: compiling %s: %w", a.Name, err)
		}
		s.pipes[a.Name] = p
	}
	return s, nil
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps", s.handleApps)
	mux.HandleFunc("POST /reason", s.handleReason)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /paths", s.handlePaths)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// appInfo is one row of the /apps listing.
type appInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	var out []appInfo
	for _, a := range apps.All() {
		out = append(out, appInfo{Name: a.Name, Title: a.Title, Description: a.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// reasonRequest is the /reason payload.
type reasonRequest struct {
	// App is the application registry name.
	App string `json:"app"`
	// Facts holds extensional facts in concrete syntax (optional).
	Facts string `json:"facts,omitempty"`
	// Scenario loads the application's bundled scenario facts.
	Scenario bool `json:"scenario,omitempty"`
}

// reasonResponse reports the derived knowledge and the session id for
// follow-up explanation queries.
type reasonResponse struct {
	Session string   `json:"session"`
	Rounds  int      `json:"rounds"`
	Facts   int      `json:"facts"`
	Answers []string `json:"answers"`
}

func (s *Server) handleReason(w http.ResponseWriter, r *http.Request) {
	var req reasonRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	app, err := apps.ByName(req.App)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	pipe := s.pipe(req.App)
	extra := app.Scenario()
	if !req.Scenario {
		extra = nil
	}
	if req.Facts != "" {
		factProg, err := parser.Parse(req.Facts)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("facts: %w", err))
			return
		}
		extra = append(extra, factProg.Facts...)
	}
	res, err := pipe.Reason(extra...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.mu.Unlock()
	s.sessions.Put(id, &session{app: req.App, result: res})

	resp := reasonResponse{Session: id, Rounds: res.Rounds, Facts: res.Store.Len()}
	for _, fid := range res.Answers() {
		resp.Answers = append(resp.Answers, res.Store.Get(fid).String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the JSON form of one explanation, including the proof
// provenance for graph front-ends.
type explainResponse struct {
	Fact           string      `json:"fact"`
	Text           string      `json:"text"`
	Deterministic  string      `json:"deterministic"`
	ReasoningPaths []string    `json:"reasoningPaths"`
	ProofSteps     []proofStep `json:"proofSteps"`
	Constants      []string    `json:"constants"`
	Complete       bool        `json:"complete"`
}

// proofStep is one chase step of the proof.
type proofStep struct {
	Rule     string   `json:"rule"`
	Premises []string `json:"premises"`
	Derived  string   `json:"derived"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sessionID := r.URL.Query().Get("session")
	sess := s.session(sessionID)
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
		return
	}
	query := r.URL.Query().Get("query")
	if query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing query parameter"))
		return
	}
	// Session ids are never reused, so a cached rendering keyed by
	// (session, query) can only ever repeat a response this exact session
	// already produced; the live-session check above keeps evicted
	// sessions from answering. Errors are never cached.
	cacheKey := sessionID + "\x00" + query
	if resp, ok := s.explanations.Get(cacheKey); ok {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	pipe := s.pipe(sess.app)
	e, err := pipe.ExplainQuery(sess.result, query)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := &explainResponse{
		Fact:           e.Fact.String(),
		Text:           e.Text,
		Deterministic:  e.Deterministic,
		ReasoningPaths: e.PathIDs(),
		Constants:      e.Proof.Constants(),
		Complete:       e.Verify() == nil,
	}
	for _, d := range e.Proof.Steps {
		step := proofStep{Rule: d.Rule.Label, Derived: sess.result.Store.Get(d.Fact).String()}
		for _, p := range d.Premises {
			step.Premises = append(step.Premises, sess.result.Store.Get(p).String())
		}
		resp.ProofSteps = append(resp.ProofSteps, step)
	}
	s.explanations.Put(cacheKey, resp)
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /stats payload: serving-layer cache accounting plus
// per-application pipeline cache stats.
type statsResponse struct {
	// Sessions accounts the bounded session store.
	Sessions lru.Stats `json:"sessions"`
	// Explanations accounts the rendered-explanation cache.
	Explanations lru.Stats `json:"explanations"`
	// Apps maps application name to its pipeline cache stats (reasoning
	// results, explanation memo, deduplicated runs).
	Apps map[string]core.CacheStats `json:"apps"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Sessions:     s.sessions.Stats(),
		Explanations: s.explanations.Stats(),
		Apps:         map[string]core.CacheStats{},
	}
	for name, pipe := range s.pipes {
		resp.Apps[name] = pipe.CacheStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// pathInfo is one reasoning path of /paths.
type pathInfo struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"`
	Rules  []string `json:"rules"`
	Dashed bool     `json:"dashed"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("app")
	pipe := s.pipe(name)
	if pipe == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown application %q", name))
		return
	}
	var out []pathInfo
	for _, p := range pipe.Analysis().All() {
		out = append(out, pathInfo{
			ID:     p.ID,
			Kind:   p.Kind.String(),
			Rules:  p.RuleLabels(),
			Dashed: p.Dashed,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pipe returns the compiled pipeline for an app; pipes is immutable after
// construction so no locking is needed.
func (s *Server) pipe(name string) *core.Pipeline {
	return s.pipes[name]
}

func (s *Server) session(id string) *session {
	sess, _ := s.sessions.Get(id)
	return sess
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
