// Package server exposes the explanation pipeline as a small JSON-over-HTTP
// service, mirroring the paper's deployment context: analysts interact with
// the Knowledge Graph through a front-end (its reference [10], KG-Roar, is
// an interactive graph environment) and request explanations for derived
// facts on demand. The service holds compiled applications; reasoning
// results are kept per session so repeated explanation queries do not rerun
// the chase.
//
// Endpoints (all JSON):
//
//	GET  /apps                        list the deployed applications
//	POST /reason                      {"app": ..., "facts": "...", "scenario": bool} -> {"session": id, answers}
//	                                  {"session": ..., "epoch": N} -> current answers of a live session at or past epoch N
//	POST /facts                       {"session": ..., "add": "...", "retract": "...", "async": bool} -> updated answers
//	GET  /explain?session=S&query=Q&epoch=N   explanation of one derived fact (at or past epoch N)
//	GET  /paths?app=A                 the reasoning paths of an application
//	GET  /stats                       cache occupancy, hit/miss/eviction, incremental-update and write-path counters
//
// Everything stays inside the process: no data leaves, matching the paper's
// confidentiality requirement.
//
// # Serving caches
//
// The server is a bounded memoization layer over the pipeline: sessions
// live in an LRU (capacity Options.MaxSessions) so state cannot grow
// without bound under heavy traffic, rendered explanation responses are
// memoized per (session, query) in a second LRU (Options.MaxExplanations),
// and every pipeline runs with the core result cache and explanation memo
// enabled, so identical /reason payloads share one chase run and repeated
// /explain queries skip proof extraction, mapping and verbalization.
// Cached responses are byte-identical to uncached ones — every cached
// object is deterministic and immutable — and all caches expose their
// counters on /stats.
//
// # Live sessions and the write path
//
// POST /facts mutates a session in place: base facts are added or retracted
// and the session's fixpoint is repaired incrementally (see the incremental
// package) instead of re-chased. Writes flow through a per-session group
// committer (core.Committer): concurrent mutations of one session coalesce
// into a single merged delta, logged to the session's write-ahead log
// (internal/wal) before it is applied under one maintainer lock
// acquisition, and every coalesced writer receives the shared commit epoch
// and result. 429 is returned only when the session's write queue is full.
// With "async": true a write answers 202 as soon as its batch is durably
// logged, carrying the epoch token; /reason and /explain accept ?epoch= and
// wait (bounded by the request deadline) until the state has caught up, or
// answer 409 for epochs that were never issued.
//
// Each commit advances the session's epoch, which is part of every
// rendered-explanation cache key, so explanations cached against the old
// fixpoint can never answer for the new one; the superseded entries are
// removed eagerly and counted on /stats. A failed mutation (e.g. a
// constraint violation) poisons the session's maintainer — the session
// keeps serving its last consistent result, further mutations report the
// failure, and clients recover by opening a fresh session.
//
// With a WAL directory configured, committed sessions survive eviction and
// process crashes: the log records the program fingerprint, the opening
// base facts and every committed delta, and a request naming an evicted
// session replays it back to byte-identical state (same atoms, fact ids and
// proofs — the incremental engine is deterministic) instead of 404.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/incremental"
	"repro/internal/lru"
	"repro/internal/parser"
	"repro/internal/wal"
)

// Server is the HTTP handler set. Create with New.
type Server struct {
	// pipes is immutable after construction.
	pipes map[string]*core.Pipeline
	// sessions is the bounded session store: least recently used sessions
	// are evicted at capacity (their immutable chase results are shared
	// with the pipeline result cache, so eviction only drops the handle).
	sessions *lru.Cache[string, *session]
	// explanations memoizes rendered /explain responses per
	// (session, query). Responses are immutable once cached.
	explanations *lru.Cache[string, *explainResponse]

	// mu guards nextID and assigned.
	mu     sync.Mutex
	nextID int
	// assigned records every client-assigned session id ever accepted by
	// this process, so an id cannot be claimed twice even after its session
	// was evicted (session ids are never reused: the rendered-explanation
	// cache keys on them). Across restarts the durable files under walDir
	// extend the check.
	assigned map[string]bool

	// fingerprints maps application name to its compiled-program
	// fingerprint, stamped into WAL headers and checked on restore.
	// Immutable after construction.
	fingerprints map[string]string
	// Write-path configuration (see Options).
	walDir       string
	walSync      wal.SyncPolicy
	commitWindow time.Duration
	writeQueue   int
	// syncBatcher coalesces WAL fsyncs across sessions under the group
	// policy (nil otherwise): concurrent sessions' commit windows share
	// flush rounds instead of each paying a serialized fsync.
	syncBatcher *wal.SyncBatcher
	// restoreMu guards restoring, the per-session singleflight table of WAL
	// session restores. The snapshot+tail rebuild is session-local, so
	// restores of distinct sessions run in parallel; concurrent requests
	// naming one session share a single restore. restores, restoreNanos and
	// restoreHist account them for /stats.
	restoreMu    sync.Mutex
	restoring    map[string]*restoreFlight
	restores     atomic.Uint64
	restoreNanos atomic.Uint64
	restoreHist  latencyHist
	// Retirement queue: eviction hands the quiesce-checkpoint-close work of
	// the evicted session to a bounded set of background retirers, so the
	// unrelated request that tipped the session store over capacity does not
	// pay the snapshot encode + fsync tail. retireMu guards retiring (the
	// pending-retirement table restore and drain wait on) and retireClosed;
	// retireSlots is the concurrency bound (nil = retire synchronously).
	retireMu      sync.Mutex
	retiring      map[string]*retirement
	retireClosed  bool
	retireSlots   chan struct{}
	asyncRetires  atomic.Uint64
	inlineRetires atomic.Uint64
	// Rebalance control-plane counters: sessions handed off through
	// POST /release and warmed through POST /prewarm.
	releases atomic.Uint64
	prewarms atomic.Uint64
	// chaseOpts are the per-request chase options, kept so snapshot restore
	// can rebuild a live engine with the executor the server runs.
	chaseOpts chase.Options
	// Compaction thresholds (see Options) and snapshot/checkpoint counters.
	compactCommits   int
	compactBytes     int64
	compactions      atomic.Uint64
	snapshotWrites   atomic.Uint64
	snapshotRestores atomic.Uint64
	tailReplays      atomic.Uint64

	// Cumulative incremental-maintenance counters across every session
	// mutation, reported on /stats.
	updates       atomic.Uint64
	deltaRounds   atomic.Uint64
	overDeleted   atomic.Uint64
	rederived     atomic.Uint64
	invalidations atomic.Uint64

	// inflight is the admission semaphore of the reasoning endpoints: a
	// request either takes a slot without blocking or answers 503. timeout
	// is the per-request reasoning deadline (0 = none).
	inflight chan struct{}
	timeout  time.Duration
	// draining gates new work during graceful shutdown.
	draining atomic.Bool
	logf     func(format string, args ...any)

	// Request-lifecycle counters, reported on /stats.
	rejected    atomic.Uint64 // 503: semaphore full
	timeouts    atomic.Uint64 // 408: reasoning deadline exceeded
	clientGone  atomic.Uint64 // 499: client disconnected mid-reasoning
	panics      atomic.Uint64 // 500: handler panics contained
	sessionBusy atomic.Uint64 // 429: session write queue full

	// testHookInflight, when set, runs inside guard while the semaphore
	// slot is held — tests use it to saturate admission deterministically.
	testHookInflight func()
	// testHookApply, when set, runs at the start of every commit
	// publication — tests use it to pin the commit leader so writes pile
	// up in the queue deterministically.
	testHookApply func()
	// testHookRestore, when set, runs inside every session restore after the
	// singleflight slot is claimed — tests use it to hold N distinct
	// restores in flight at once, proving they no longer serialize.
	testHookRestore func(id string)
	// testHookRetire, when set, runs inside every background retirement
	// before the session is quiesced — tests use it to pin retirements so
	// the drain barrier and the restore-waits-for-retirement path are
	// exercised deterministically.
	testHookRetire func(id string)
}

// session is one live reasoning instance. Mutations flow through cmt, the
// per-session group committer: its single leader goroutine owns the
// maintainer, so no handler ever holds a lock across an incremental
// repair. stateMu guards the published read state (result, epoch,
// explKeys) with short critical sections only: the committer's apply hook
// swaps the repaired fixpoint in atomically, and /explain reads result and
// epoch under it, so a response is always rendered against a consistent
// (fixpoint, epoch) pair; rendering additionally read-holds renderMu so it
// never overlaps the mutation of the store it is reading.
type session struct {
	// id is the session's name in the session table and on disk (WAL and
	// snapshot files). Immutable after construction.
	id  string
	app string
	// extra is the extensional fact list the session was opened with; the
	// first commit seeds the maintainer (and the WAL header) from it.
	// Immutable after construction.
	extra []ast.Atom
	// deltasSinceSnap counts WAL deltas appended since the last durable
	// snapshot — the commit-count compaction trigger. Only the session's
	// commit leader (the OnApply hook) touches it.
	deltasSinceSnap int
	// cmt is the session's group committer (see core.Committer); its leader
	// goroutine starts on the first write.
	cmt *core.Committer

	// walMu guards walLog, the session's write-ahead log handle — nil until
	// the first commit stands it up, and when no WAL directory is
	// configured.
	walMu  sync.Mutex
	walLog *wal.Log
	// syncWAL flushes the session's log after a commit: the server's
	// cross-session SyncBatcher under the group policy, a direct Log.Sync
	// otherwise. Immutable after construction.
	syncWAL func(*wal.Log) error

	// renderMu excludes response rendering from batch application: results
	// share the maintainer's grow-only store, so the committer write-holds
	// it across each repair and handlers read-hold it while materializing
	// answers, explanations and fact counts. Readers never wait for queued
	// writes — only for a repair that is mutating the store right now.
	renderMu sync.RWMutex

	stateMu sync.Mutex
	result  *chase.Result
	// epoch is the session's last applied commit sequence number (0 before
	// the first mutation); it is part of every rendered-explanation cache
	// key and is the token async writers wait on.
	epoch uint64
	// explKeys lists this session's entries in the rendered-explanation
	// cache for the current epoch, so a mutation can remove exactly them.
	explKeys []string
}

func (sess *session) setWAL(l *wal.Log) {
	sess.walMu.Lock()
	sess.walLog = l
	sess.walMu.Unlock()
}

func (sess *session) getWAL() *wal.Log {
	sess.walMu.Lock()
	defer sess.walMu.Unlock()
	return sess.walLog
}

// read returns the session's published (fixpoint, epoch) pair.
func (sess *session) read() (*chase.Result, uint64) {
	sess.stateMu.Lock()
	defer sess.stateMu.Unlock()
	return sess.result, sess.epoch
}

// Default serving-layer capacities; see Options.
const (
	DefaultMaxSessions     = 256
	DefaultMaxExplanations = 2048
	DefaultResultCacheSize = 64
	// DefaultMaxInflight bounds concurrent reasoning requests; the 65th
	// answers 503 immediately instead of queueing.
	DefaultMaxInflight = 64
	// DefaultRetireQueue bounds concurrent background session retirements
	// (the eviction-path checkpoint work); evictions past the bound retire
	// inline as backpressure. One slot is deliberate: it takes the
	// snapshot encode + fsync off the evicting request's latency path,
	// but under churn a wider queue lets concurrent retirement fsyncs
	// compete with the commit path's group fsyncs and regresses the
	// write tail (~2x write p99 at depth 4 in the 100k-session harness).
	DefaultRetireQueue = 1
)

// DefaultRequestTimeout is the per-request reasoning deadline: a chase (or
// incremental repair) that has not finished after this long is canceled at
// its next round/chunk boundary and the request answers 408.
const DefaultRequestTimeout = 30 * time.Second

// Options configure server construction.
type Options struct {
	// ChaseWorkers is the chase worker-pool size used by every /reason
	// request (chase.Options.Workers): 0 = sequential, negative = all
	// cores. Responses are identical at any setting.
	ChaseWorkers int
	// ChaseBatch selects the batch-at-a-time columnar join executor for
	// every reasoning request (chase.Options.Batch). Responses are
	// identical either way; only wall time and the /stats columnar
	// counters change.
	ChaseBatch bool
	// MaxSessions bounds the session store; at capacity the least
	// recently used session is evicted and later /explain calls against
	// it answer 404. 0 selects DefaultMaxSessions; negative values are
	// clamped to 1.
	MaxSessions int
	// MaxExplanations bounds the rendered-explanation cache. 0 selects
	// DefaultMaxExplanations; negative values are clamped to 1.
	MaxExplanations int
	// ResultCacheSize is handed to every pipeline as
	// core.Config.ResultCacheSize: identical /reason payloads for one app
	// share a cached chase run (with singleflight deduplication). 0
	// selects DefaultResultCacheSize; negative values are clamped to 1.
	ResultCacheSize int
	// RequestTimeout is the per-request reasoning deadline: the request
	// context handed to the chase carries it, and an overrun answers 408
	// within one round/chunk boundary. 0 selects DefaultRequestTimeout;
	// negative disables the deadline (client disconnect still cancels).
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently admitted reasoning requests
	// (/reason, /facts, /explain share one semaphore); at capacity
	// requests answer 503 immediately. 0 selects DefaultMaxInflight;
	// negative values are clamped to 1.
	MaxInflight int
	// MaxFacts caps the fact store of every chase run and session
	// (chase.Options.MaxFacts): a program that explodes past it fails with
	// 422 instead of exhausting memory. 0 = unlimited.
	MaxFacts int
	// WALDir enables durable sessions: every mutated session logs its
	// program fingerprint, opening base facts and committed deltas to
	// WALDir/<session>.wal, and requests naming an evicted or crash-lost
	// session restore it by replay instead of 404. Empty disables the WAL
	// (sessions are volatile, the pre-durability behavior).
	WALDir string
	// WALSync selects the fsync policy for session WALs (group fsyncs once
	// per commit batch — the default; per-commit fsyncs inside every
	// append; off never fsyncs). Ignored without WALDir.
	WALSync wal.SyncPolicy
	// CommitWindow is how long a session's commit leader keeps collecting
	// concurrent writes after the first one of a batch arrives. 0 (the
	// default) commits whatever has queued when the leader gets to it: no
	// added latency when idle, large batches under pressure.
	CommitWindow time.Duration
	// WriteQueue bounds each session's pending-write queue; writes beyond
	// it answer 429. 0 selects the committer default (64).
	WriteQueue int
	// CompactCommits checkpoints a session's engine state to its snapshot
	// file and truncates its WAL to a tail after this many committed deltas
	// since the last checkpoint. 0 disables count-based compaction. Ignored
	// without WALDir.
	CompactCommits int
	// CompactBytes triggers the same checkpoint when the session's WAL file
	// exceeds this size. 0 disables size-based compaction. Ignored without
	// WALDir.
	CompactBytes int64
	// RetireQueue bounds concurrent background session retirements (the
	// eviction-path committer quiesce + snapshot encode + fsync): an
	// eviction queues its retirement and returns immediately; past the
	// bound it falls back to retiring inline, so a retirement backlog
	// becomes eviction backpressure instead of a goroutine pile-up. 0
	// selects DefaultRetireQueue; negative values retire synchronously
	// inside the eviction hook (the pre-queue behavior).
	RetireQueue int
	// Log receives panic reports and lifecycle messages; nil selects the
	// process-default logger.
	Log *log.Logger
}

// New compiles every bundled application into a server with default
// options.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions compiles every bundled application into a server.
func NewWithOptions(opts Options) (*Server, error) {
	if opts.MaxSessions == 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.MaxExplanations == 0 {
		opts.MaxExplanations = DefaultMaxExplanations
	}
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.MaxInflight < 1 {
		opts.MaxInflight = 1
	}
	switch {
	case opts.RequestTimeout == 0:
		opts.RequestTimeout = DefaultRequestTimeout
	case opts.RequestTimeout < 0:
		opts.RequestTimeout = 0
	}
	switch {
	case opts.RetireQueue == 0:
		opts.RetireQueue = DefaultRetireQueue
	case opts.RetireQueue < 0:
		opts.RetireQueue = 0
	}
	logger := opts.Log
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		pipes:          map[string]*core.Pipeline{},
		fingerprints:   map[string]string{},
		assigned:       map[string]bool{},
		sessions:       lru.New[string, *session](opts.MaxSessions),
		explanations:   lru.New[string, *explainResponse](opts.MaxExplanations),
		restoring:      map[string]*restoreFlight{},
		retiring:       map[string]*retirement{},
		inflight:       make(chan struct{}, opts.MaxInflight),
		timeout:        opts.RequestTimeout,
		walDir:         opts.WALDir,
		walSync:        opts.WALSync,
		commitWindow:   opts.CommitWindow,
		writeQueue:     opts.WriteQueue,
		chaseOpts:      chase.Options{Workers: opts.ChaseWorkers, Batch: opts.ChaseBatch, MaxFacts: opts.MaxFacts},
		compactCommits: opts.CompactCommits,
		compactBytes:   opts.CompactBytes,
		logf:           logger.Printf,
	}
	if opts.WALDir != "" && opts.WALSync == wal.SyncGroup {
		s.syncBatcher = wal.NewSyncBatcher()
	}
	if opts.RetireQueue > 0 {
		s.retireSlots = make(chan struct{}, opts.RetireQueue)
	}
	for _, a := range apps.All() {
		p, err := a.Pipeline(core.Config{
			Chase:                chase.Options{Workers: opts.ChaseWorkers, Batch: opts.ChaseBatch, MaxFacts: opts.MaxFacts},
			ResultCacheSize:      opts.ResultCacheSize,
			ExplanationCacheSize: opts.MaxExplanations,
		})
		if err != nil {
			return nil, fmt.Errorf("server: compiling %s: %w", a.Name, err)
		}
		s.pipes[a.Name] = p
		s.fingerprints[a.Name] = programFingerprint(p.Program())
	}
	if s.walDir != "" {
		if err := os.MkdirAll(s.walDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: WAL directory: %w", err)
		}
		// Never reuse a session id that still has durable state: ids name
		// WAL files, and a collision would truncate a restorable session.
		s.nextID = scanWALDir(s.walDir)
	}
	// Eviction quiesces the session and checkpoints its fixpoint to the
	// snapshot file before releasing the write-path resources (commit
	// queue, WAL handle), so evicting a mutated session never discards work
	// a restore would have to replay; the files stay on disk for restore.
	// The work itself runs on the bounded retirement queue — the request
	// that caused the eviction does not wait for the checkpoint. The
	// retirement is registered under the cache lock, atomically with the
	// removal, so a restore that misses the session table always finds the
	// retirement entry to wait on.
	s.sessions.OnEvictLocked(func(id string, sess *session) { s.registerRetirement(id) })
	s.sessions.OnEvict(func(id string, sess *session) { s.retireEvicted(id, sess) })
	return s, nil
}

// Handler returns the route multiplexer. The reasoning endpoints run behind
// the admission guard (bounded in-flight slots, per-request deadline); the
// cheap metadata endpoints bypass it so /stats stays observable under
// saturation; the whole mux runs behind panic recovery and the drain gate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps", s.handleApps)
	mux.HandleFunc("POST /reason", s.guard(s.handleReason))
	mux.HandleFunc("POST /facts", s.guard(s.handleFacts))
	mux.HandleFunc("GET /explain", s.guard(s.handleExplain))
	mux.HandleFunc("GET /paths", s.handlePaths)
	mux.HandleFunc("GET /stats", s.handleStats)
	// Rebalance control plane (see rebalance.go): cheap listing plus the
	// release/prewarm handoff pair the router drives on membership change.
	// They bypass the admission guard — prewarm bounds its own restore
	// concurrency — but sit behind the drain gate like everything else.
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("POST /prewarm", s.handlePrewarm)
	return s.protect(mux)
}

// appInfo is one row of the /apps listing.
type appInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	var out []appInfo
	for _, a := range apps.All() {
		out = append(out, appInfo{Name: a.Name, Title: a.Title, Description: a.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// reasonRequest is the /reason payload. App/Facts/Scenario open a new
// session; Session (plus an optional Epoch, also accepted as ?epoch=)
// instead reads a live session's current answers, waiting until its state
// has caught up with the given commit epoch.
type reasonRequest struct {
	// App is the application registry name.
	App string `json:"app"`
	// Facts holds extensional facts in concrete syntax (optional).
	Facts string `json:"facts,omitempty"`
	// Scenario loads the application's bundled scenario facts.
	Scenario bool `json:"scenario,omitempty"`
	// Session reads an existing session instead of opening one.
	Session string `json:"session,omitempty"`
	// Epoch makes a session read wait (bounded by the request deadline)
	// until the session has applied at least this commit epoch; an epoch
	// that was never issued answers 409.
	Epoch uint64 `json:"epoch,omitempty"`
	// AssignID names the new session instead of letting the server pick an
	// id. The routing tier uses it so a session's id — which the router
	// consistent-hashes to pick a worker — is fixed before the first
	// request is dispatched. Ids are [A-Za-z0-9_-], at most 64 bytes, must
	// not collide with the server-generated s<N> namespace, and are never
	// reused: a taken id answers 409.
	AssignID string `json:"assignId,omitempty"`
}

// reasonResponse reports the derived knowledge and the session id for
// follow-up explanation queries.
type reasonResponse struct {
	Session string `json:"session"`
	// Epoch is the session's last applied commit epoch (0 before the first
	// mutation); present on session reads.
	Epoch   uint64   `json:"epoch,omitempty"`
	Rounds  int      `json:"rounds"`
	Facts   int      `json:"facts"`
	Answers []string `json:"answers"`
}

func (s *Server) handleReason(w http.ResponseWriter, r *http.Request) {
	var req reasonRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if q := r.URL.Query().Get("epoch"); q != "" {
		e, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("epoch: %w", err))
			return
		}
		req.Epoch = e
	}
	if req.Session != "" {
		s.handleSessionRead(w, r, req)
		return
	}
	if req.Epoch != 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("epoch requires a session"))
		return
	}
	app, err := apps.ByName(req.App)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	pipe := s.pipe(req.App)
	extra := app.Scenario()
	if !req.Scenario {
		extra = nil
	}
	if req.Facts != "" {
		factProg, err := parser.Parse(req.Facts)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("facts: %w", err))
			return
		}
		extra = append(extra, factProg.Facts...)
	}
	var id string
	if req.AssignID != "" {
		if err := validateAssignedID(req.AssignID); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if !s.claimID(req.AssignID) {
			writeError(w, http.StatusConflict, fmt.Errorf("session id %q is taken", req.AssignID))
			return
		}
		id = req.AssignID
	}
	res, err := pipe.ReasonContext(r.Context(), extra...)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}

	if id == "" {
		s.mu.Lock()
		s.nextID++
		id = "s" + strconv.Itoa(s.nextID)
		s.mu.Unlock()
	}
	sess, err := s.newSession(id, req.App, extra, res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.sessions.Put(id, sess)

	resp := reasonResponse{Session: id, Rounds: res.Rounds, Facts: res.Store.Len()}
	for _, fid := range res.Answers() {
		resp.Answers = append(resp.Answers, res.Store.Get(fid).String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionRead answers a /reason request naming an existing session:
// the session's current answers, optionally not before a given commit
// epoch.
func (s *Server) handleSessionRead(w http.ResponseWriter, r *http.Request, req reasonRequest) {
	if req.App != "" || req.Facts != "" || req.Scenario {
		writeError(w, http.StatusBadRequest, fmt.Errorf("a session read takes no app, facts or scenario"))
		return
	}
	sess, ok := s.liveSession(w, r.Context(), req.Session)
	if !ok {
		return
	}
	if !s.awaitEpoch(w, r.Context(), sess, req.Epoch) {
		return
	}
	res, epoch := sess.read()
	sess.renderMu.RLock()
	resp := reasonResponse{Session: req.Session, Epoch: epoch, Rounds: res.Rounds, Facts: res.Store.LiveLen()}
	for _, fid := range res.Answers() {
		resp.Answers = append(resp.Answers, res.Store.Get(fid).String())
	}
	sess.renderMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// validateAssignedID checks the client-assigned session id grammar:
// [A-Za-z0-9_-], at most 64 bytes, outside the server-generated s<N>
// namespace.
func validateAssignedID(id string) error {
	if len(id) == 0 || len(id) > 64 {
		return fmt.Errorf("assignId must be 1-64 characters")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
		if !ok {
			return fmt.Errorf("assignId: invalid character %q", c)
		}
	}
	if isGeneratedID(id) {
		return fmt.Errorf("assignId %q collides with the server-generated s<N> namespace", id)
	}
	return nil
}

// isGeneratedID reports whether id has the server-generated s<N> form.
func isGeneratedID(id string) bool {
	if len(id) < 2 || id[0] != 's' {
		return false
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return true
}

// claimID reserves a client-assigned session id, refusing ids that are
// live, were ever assigned in this process, or left durable state on disk
// in a previous one.
func (s *Server) claimID(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.assigned[id] || s.session(id) != nil {
		return false
	}
	if s.walDir != "" {
		if _, err := os.Stat(s.walPath(id)); err == nil {
			return false
		}
		if _, err := os.Stat(s.snapPath(id)); err == nil {
			return false
		}
	}
	s.assigned[id] = true
	return true
}

// liveSession resolves a session id, transparently restoring evicted
// sessions from their WAL; on failure the response is already written.
func (s *Server) liveSession(w http.ResponseWriter, ctx context.Context, id string) (*session, bool) {
	if sess := s.session(id); sess != nil {
		return sess, true
	}
	sess, err := s.restore(ctx, id)
	if err != nil {
		if chase.ContextErr(ctx) != nil {
			s.writeEngineError(w, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return nil, false
	}
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
		return nil, false
	}
	return sess, true
}

// awaitEpoch blocks until the session has applied the requested commit
// epoch (0 = no wait). Unissued epochs answer 409; a request deadline
// expiring mid-wait answers through the engine-error mapping (408/499). On
// failure the response is already written.
func (s *Server) awaitEpoch(w http.ResponseWriter, ctx context.Context, sess *session, epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	if err := sess.cmt.WaitApplied(ctx, epoch); err != nil {
		switch {
		case errors.Is(err, core.ErrEpochUnknown), errors.Is(err, core.ErrCommitterClosed):
			writeError(w, http.StatusConflict, err)
		default:
			s.writeEngineError(w, err)
		}
		return false
	}
	return true
}

// factsRequest is the /facts payload: base facts to add and retract, in
// concrete syntax (newline- or period-separated fact lists, same format as
// the /reason facts field). With Async set the request answers 202 as soon
// as its batch is durably logged, carrying the commit epoch to wait on.
type factsRequest struct {
	Session string `json:"session"`
	Add     string `json:"add,omitempty"`
	Retract string `json:"retract,omitempty"`
	Async   bool   `json:"async,omitempty"`
}

// factsResponse reports the repaired fixpoint and what the update did.
type factsResponse struct {
	Session string `json:"session"`
	// Epoch is the session's new version; explanations rendered before it
	// are no longer served.
	Epoch   uint64                  `json:"epoch"`
	Stats   incremental.UpdateStats `json:"stats"`
	Facts   int                     `json:"facts"`
	Answers []string                `json:"answers"`
	// Batch is the number of concurrent writes coalesced into this
	// request's commit (1 when it committed alone).
	Batch int `json:"batch"`
	// InvalidatedExplanations counts cached renderings this update removed.
	InvalidatedExplanations int `json:"invalidatedExplanations"`
}

// asyncFactsResponse is the 202 body of an async write: the epoch token to
// pass to /reason or /explain.
type asyncFactsResponse struct {
	Session string `json:"session"`
	Epoch   uint64 `json:"epoch"`
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	var req factsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sess, ok := s.liveSession(w, r.Context(), req.Session)
	if !ok {
		return
	}
	parseFacts := func(field, src string) ([]ast.Atom, bool) {
		if src == "" {
			return nil, true
		}
		prog, err := parser.Parse(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", field, err))
			return nil, false
		}
		return prog.Facts, true
	}
	add, ok := parseFacts("add", req.Add)
	if !ok {
		return
	}
	retract, ok := parseFacts("retract", req.Retract)
	if !ok {
		return
	}

	// The write joins the session's commit queue: concurrent writes
	// coalesce into one logged, applied batch, and this request observes
	// the shared commit epoch and result. The apply itself runs detached
	// from r.Context() under the server timeout — a client hanging up
	// abandons only its wait, never a repair in progress.
	res, err := sess.cmt.Submit(r.Context(), add, retract, req.Async)
	if err != nil {
		if errors.Is(err, core.ErrQueueFull) {
			s.sessionBusy.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("session %s write queue is full; retry", req.Session))
			return
		}
		s.writeEngineError(w, err)
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, asyncFactsResponse{Session: req.Session, Epoch: res.Seq})
		return
	}
	sess.renderMu.RLock()
	resp := factsResponse{
		Session:                 req.Session,
		Epoch:                   res.Seq,
		Stats:                   res.Stats,
		Facts:                   res.Result.Store.LiveLen(),
		Batch:                   res.Batch,
		InvalidatedExplanations: res.Invalidated,
	}
	for _, fid := range res.Result.Answers() {
		resp.Answers = append(resp.Answers, res.Result.Store.Get(fid).String())
	}
	sess.renderMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the JSON form of one explanation, including the proof
// provenance for graph front-ends.
type explainResponse struct {
	Fact           string      `json:"fact"`
	Text           string      `json:"text"`
	Deterministic  string      `json:"deterministic"`
	ReasoningPaths []string    `json:"reasoningPaths"`
	ProofSteps     []proofStep `json:"proofSteps"`
	Constants      []string    `json:"constants"`
	Complete       bool        `json:"complete"`
}

// proofStep is one chase step of the proof.
type proofStep struct {
	Rule     string   `json:"rule"`
	Premises []string `json:"premises"`
	Derived  string   `json:"derived"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sessionID := r.URL.Query().Get("session")
	sess, ok := s.liveSession(w, r.Context(), sessionID)
	if !ok {
		return
	}
	query := r.URL.Query().Get("query")
	if query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing query parameter"))
		return
	}
	if q := r.URL.Query().Get("epoch"); q != "" {
		e, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("epoch: %w", err))
			return
		}
		if !s.awaitEpoch(w, r.Context(), sess, e) {
			return
		}
	}
	// Session ids are never reused and the session's epoch is part of the
	// key, so a cached rendering can only ever repeat a response this exact
	// session produced against its current fixpoint; the live-session check
	// above keeps unrestorable sessions from answering, and every commit
	// removes the previous epoch's entries. Errors are never cached.
	result, epoch := sess.read()
	cacheKey := sessionID + "#" + strconv.FormatUint(epoch, 10) + "\x00" + query
	if resp, ok := s.explanations.Get(cacheKey); ok {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	pipe := s.pipe(sess.app)
	sess.renderMu.RLock()
	e, err := pipe.ExplainQuery(result, query)
	if err != nil {
		sess.renderMu.RUnlock()
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := &explainResponse{
		Fact:           e.Fact.String(),
		Text:           e.Text,
		Deterministic:  e.Deterministic,
		ReasoningPaths: e.PathIDs(),
		Constants:      e.Proof.Constants(),
		Complete:       e.Verify() == nil,
	}
	for _, d := range e.Proof.Steps {
		step := proofStep{Rule: d.Rule.Label, Derived: result.Store.Get(d.Fact).String()}
		for _, p := range d.Premises {
			step.Premises = append(step.Premises, result.Store.Get(p).String())
		}
		resp.ProofSteps = append(resp.ProofSteps, step)
	}
	sess.renderMu.RUnlock()
	// Cache only if the session has not moved on while we rendered: an
	// entry for a superseded epoch would dodge the next invalidation sweep.
	sess.stateMu.Lock()
	if sess.epoch == epoch {
		s.explanations.Put(cacheKey, resp)
		sess.explKeys = append(sess.explKeys, cacheKey)
	}
	sess.stateMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /stats payload: serving-layer cache accounting plus
// per-application pipeline cache stats.
type statsResponse struct {
	// Sessions accounts the bounded session store.
	Sessions lru.Stats `json:"sessions"`
	// Explanations accounts the rendered-explanation cache.
	Explanations lru.Stats `json:"explanations"`
	// Apps maps application name to its pipeline cache stats (reasoning
	// results, explanation memo, deduplicated runs).
	Apps map[string]core.CacheStats `json:"apps"`
	// Incremental aggregates /facts maintenance work across all sessions.
	Incremental incrementalStats `json:"incremental"`
	// Columnar aggregates columnar index-maintenance work (rebuilds,
	// tail merges, tail refreshes, appended rows) across every fact store
	// in the process — the cost side of the batch executor's ledger.
	Columnar database.ColumnarStats `json:"columnar"`
	// Requests reports the request-lifecycle accounting (admission,
	// deadlines, contained panics).
	Requests requestStats `json:"requests"`
	// WritePath reports the group-commit and durability accounting.
	WritePath writePathStats `json:"writePath"`
}

// writePathStats is the /stats write-path section: group-commit batching,
// WAL appends/fsyncs and session restores.
type writePathStats struct {
	// Commit is the process-wide group-commit accounting: writes accepted,
	// batches applied, coalesced batch sizes (Batched/Commits is the
	// mean), queue depth high-water mark and queue-full rejections.
	Commit core.CommitStats `json:"commit"`
	// WAL is the process-wide write-ahead-log accounting (appends, fsyncs,
	// bytes, replays).
	WAL wal.Stats `json:"wal"`
	// Restores counts sessions transparently rebuilt from their WAL after
	// eviction or restart; RestoreMillis is the total wall time spent
	// replaying them.
	Restores      uint64 `json:"restores"`
	RestoreMillis uint64 `json:"restoreMillis"`
	// RestoreLatency summarizes per-restore wall time (log-bucket
	// histogram: quantiles are bucket upper bounds, the max is exact).
	RestoreLatency latencySummary `json:"restoreLatency"`
	// Retirements accounts the eviction retirement queue.
	Retirements retireStats `json:"retirements"`
	// Released counts sessions checkpointed and handed off through
	// POST /release; Prewarmed counts sessions restored ahead of first
	// touch through POST /prewarm (the rebalance control plane).
	Released  uint64 `json:"released"`
	Prewarmed uint64 `json:"prewarmed"`
	// Compactions counts WAL checkpoint-and-truncate cycles; SnapshotWrites
	// counts engine snapshots written (compaction, eviction, drain).
	Compactions    uint64 `json:"compactions"`
	SnapshotWrites uint64 `json:"snapshotWrites"`
	// SnapshotRestores counts restores served from a snapshot instead of a
	// full WAL replay; TailReplays is the total log deltas replayed on top
	// of restored snapshots (the short tails).
	SnapshotRestores uint64 `json:"snapshotRestores"`
	TailReplays      uint64 `json:"tailReplays"`
}

// retireStats is the /stats retirement-queue section.
type retireStats struct {
	// Async counts retirements completed by background retirers; Inline
	// counts evictions that retired synchronously (queue saturated, queue
	// disabled, or server closing).
	Async  uint64 `json:"async"`
	Inline uint64 `json:"inline"`
	// Pending is the number of retirements queued or running right now.
	Pending int `json:"pending"`
}

// incrementalStats is the /stats incremental-maintenance section.
type incrementalStats struct {
	// Updates counts successful /facts mutations.
	Updates uint64 `json:"updates"`
	// DeltaRounds is the total semi-naive rounds spent repairing fixpoints.
	DeltaRounds uint64 `json:"deltaRounds"`
	// OverDeleted is the total derived facts tombstoned by retractions.
	OverDeleted uint64 `json:"overDeleted"`
	// Rederived is the total over-deleted facts revived through alternative
	// proofs.
	Rederived uint64 `json:"rederived"`
	// Invalidations is the total cached explanations removed by mutations.
	Invalidations uint64 `json:"invalidations"`
}

// requestStats is the /stats request-lifecycle section.
type requestStats struct {
	// Inflight is the number of reasoning requests currently admitted, out
	// of MaxInflight slots.
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"maxInflight"`
	// Rejected counts requests answered 503 because every slot was taken.
	Rejected uint64 `json:"rejected"`
	// Timeouts counts requests answered 408 because reasoning overran the
	// per-request deadline.
	Timeouts uint64 `json:"timeouts"`
	// ClientGone counts reasoning runs abandoned because the client
	// disconnected (status 499 in logs; the client never sees it).
	ClientGone uint64 `json:"clientGone"`
	// Panics counts handler panics contained by the recovery middleware.
	Panics uint64 `json:"panics"`
	// SessionBusy counts mutations answered 429 because their session's
	// write queue was full (queue-full backpressure).
	SessionBusy uint64 `json:"sessionBusy"`
	// Draining reports whether the server is refusing new work for
	// shutdown.
	Draining bool `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Sessions:     s.sessions.Stats(),
		Explanations: s.explanations.Stats(),
		Apps:         map[string]core.CacheStats{},
		Incremental: incrementalStats{
			Updates:       s.updates.Load(),
			DeltaRounds:   s.deltaRounds.Load(),
			OverDeleted:   s.overDeleted.Load(),
			Rederived:     s.rederived.Load(),
			Invalidations: s.invalidations.Load(),
		},
		Columnar: database.GlobalColumnarStats(),
		Requests: requestStats{
			Inflight:    len(s.inflight),
			MaxInflight: cap(s.inflight),
			Rejected:    s.rejected.Load(),
			Timeouts:    s.timeouts.Load(),
			ClientGone:  s.clientGone.Load(),
			Panics:      s.panics.Load(),
			SessionBusy: s.sessionBusy.Load(),
			Draining:    s.draining.Load(),
		},
		WritePath: writePathStats{
			Commit:         core.GlobalCommitStats(),
			WAL:            wal.GlobalStats(),
			Restores:       s.restores.Load(),
			RestoreMillis:  s.restoreNanos.Load() / uint64(time.Millisecond),
			RestoreLatency: s.restoreHist.summary(),
			Retirements: retireStats{
				Async:   s.asyncRetires.Load(),
				Inline:  s.inlineRetires.Load(),
				Pending: s.pendingRetirements(),
			},
			Released:         s.releases.Load(),
			Prewarmed:        s.prewarms.Load(),
			Compactions:      s.compactions.Load(),
			SnapshotWrites:   s.snapshotWrites.Load(),
			SnapshotRestores: s.snapshotRestores.Load(),
			TailReplays:      s.tailReplays.Load(),
		},
	}
	for name, pipe := range s.pipes {
		resp.Apps[name] = pipe.CacheStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// pathInfo is one reasoning path of /paths.
type pathInfo struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"`
	Rules  []string `json:"rules"`
	Dashed bool     `json:"dashed"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("app")
	pipe := s.pipe(name)
	if pipe == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown application %q", name))
		return
	}
	var out []pathInfo
	for _, p := range pipe.Analysis().All() {
		out = append(out, pathInfo{
			ID:     p.ID,
			Kind:   p.Kind.String(),
			Rules:  p.RuleLabels(),
			Dashed: p.Dashed,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pipe returns the compiled pipeline for an app; pipes is immutable after
// construction so no locking is needed.
func (s *Server) pipe(name string) *core.Pipeline {
	return s.pipes[name]
}

func (s *Server) session(id string) *session {
	sess, _ := s.sessions.Get(id)
	return sess
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
