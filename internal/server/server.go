// Package server exposes the explanation pipeline as a small JSON-over-HTTP
// service, mirroring the paper's deployment context: analysts interact with
// the Knowledge Graph through a front-end (its reference [10], KG-Roar, is
// an interactive graph environment) and request explanations for derived
// facts on demand. The service holds compiled applications; reasoning
// results are kept per session so repeated explanation queries do not rerun
// the chase.
//
// Endpoints (all JSON):
//
//	GET  /apps                        list the deployed applications
//	POST /reason                      {"app": ..., "facts": "...", "scenario": bool} -> {"session": id, answers}
//	POST /facts                       {"session": ..., "add": "...", "retract": "..."} -> updated answers
//	GET  /explain?session=S&query=Q   explanation of one derived fact
//	GET  /paths?app=A                 the reasoning paths of an application
//	GET  /stats                       cache occupancy, hit/miss/eviction and incremental-update counters
//
// Everything stays inside the process: no data leaves, matching the paper's
// confidentiality requirement.
//
// # Serving caches
//
// The server is a bounded memoization layer over the pipeline: sessions
// live in an LRU (capacity Options.MaxSessions) so state cannot grow
// without bound under heavy traffic, rendered explanation responses are
// memoized per (session, query) in a second LRU (Options.MaxExplanations),
// and every pipeline runs with the core result cache and explanation memo
// enabled, so identical /reason payloads share one chase run and repeated
// /explain queries skip proof extraction, mapping and verbalization.
// Cached responses are byte-identical to uncached ones — every cached
// object is deterministic and immutable — and all caches expose their
// counters on /stats.
//
// # Live sessions
//
// POST /facts mutates a session in place: base facts are added or retracted
// and the session's fixpoint is repaired incrementally (see the incremental
// package) instead of re-chased. The first mutation of a session stands up
// its maintainer with one full chase; later mutations pay only for the
// delta. Each mutation advances the session's epoch, which is part of every
// rendered-explanation cache key, so explanations cached against the old
// fixpoint can never answer for the new one; the superseded entries are
// removed eagerly and counted on /stats. A failed mutation (e.g. a
// constraint violation) poisons the session's maintainer — the session
// keeps serving its last consistent result, further mutations report the
// failure, and clients recover by opening a fresh session.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/incremental"
	"repro/internal/lru"
	"repro/internal/parser"
)

// Server is the HTTP handler set. Create with New.
type Server struct {
	// pipes is immutable after construction.
	pipes map[string]*core.Pipeline
	// sessions is the bounded session store: least recently used sessions
	// are evicted at capacity (their immutable chase results are shared
	// with the pipeline result cache, so eviction only drops the handle).
	sessions *lru.Cache[string, *session]
	// explanations memoizes rendered /explain responses per
	// (session, query). Responses are immutable once cached.
	explanations *lru.Cache[string, *explainResponse]

	// mu guards nextID.
	mu     sync.Mutex
	nextID int

	// Cumulative incremental-maintenance counters across every session
	// mutation, reported on /stats.
	updates       atomic.Uint64
	deltaRounds   atomic.Uint64
	overDeleted   atomic.Uint64
	rederived     atomic.Uint64
	invalidations atomic.Uint64

	// inflight is the admission semaphore of the reasoning endpoints: a
	// request either takes a slot without blocking or answers 503. timeout
	// is the per-request reasoning deadline (0 = none).
	inflight chan struct{}
	timeout  time.Duration
	// draining gates new work during graceful shutdown.
	draining atomic.Bool
	logf     func(format string, args ...any)

	// Request-lifecycle counters, reported on /stats.
	rejected    atomic.Uint64 // 503: semaphore full
	timeouts    atomic.Uint64 // 408: reasoning deadline exceeded
	clientGone  atomic.Uint64 // 499: client disconnected mid-reasoning
	panics      atomic.Uint64 // 500: handler panics contained
	sessionBusy atomic.Uint64 // 429: concurrent mutation of one session

	// testHookInflight, when set, runs inside guard while the semaphore
	// slot is held — tests use it to saturate admission deterministically.
	testHookInflight func()
}

// session is one live reasoning instance, with two locks at two timescales.
// mu serializes mutations: POST /facts holds it for the whole (possibly
// long) incremental repair, and a second concurrent mutation of the same
// session fails fast with 429 instead of queueing behind it. stateMu guards
// the published state (result, epoch, explKeys) with short critical
// sections only: /facts swaps the repaired fixpoint in atomically, and
// /explain reads result and epoch under it, so a response is always
// rendered against a consistent (fixpoint, epoch) pair and readers never
// block behind a running repair.
type session struct {
	app string

	mu sync.Mutex
	// extra is the extensional fact list the session was opened with; the
	// first mutation seeds the maintainer from it. mnt is the session's
	// incremental maintainer, nil until the first POST /facts. Both are
	// touched only under mu.
	extra []ast.Atom
	mnt   *incremental.Maintainer

	stateMu sync.Mutex
	result  *chase.Result
	// epoch versions the session's fixpoint (0 before the first mutation);
	// it is part of every rendered-explanation cache key.
	epoch uint64
	// explKeys lists this session's entries in the rendered-explanation
	// cache for the current epoch, so a mutation can remove exactly them.
	explKeys []string
}

// Default serving-layer capacities; see Options.
const (
	DefaultMaxSessions     = 256
	DefaultMaxExplanations = 2048
	DefaultResultCacheSize = 64
	// DefaultMaxInflight bounds concurrent reasoning requests; the 65th
	// answers 503 immediately instead of queueing.
	DefaultMaxInflight = 64
)

// DefaultRequestTimeout is the per-request reasoning deadline: a chase (or
// incremental repair) that has not finished after this long is canceled at
// its next round/chunk boundary and the request answers 408.
const DefaultRequestTimeout = 30 * time.Second

// Options configure server construction.
type Options struct {
	// ChaseWorkers is the chase worker-pool size used by every /reason
	// request (chase.Options.Workers): 0 = sequential, negative = all
	// cores. Responses are identical at any setting.
	ChaseWorkers int
	// ChaseBatch selects the batch-at-a-time columnar join executor for
	// every reasoning request (chase.Options.Batch). Responses are
	// identical either way; only wall time and the /stats columnar
	// counters change.
	ChaseBatch bool
	// MaxSessions bounds the session store; at capacity the least
	// recently used session is evicted and later /explain calls against
	// it answer 404. 0 selects DefaultMaxSessions; negative values are
	// clamped to 1.
	MaxSessions int
	// MaxExplanations bounds the rendered-explanation cache. 0 selects
	// DefaultMaxExplanations; negative values are clamped to 1.
	MaxExplanations int
	// ResultCacheSize is handed to every pipeline as
	// core.Config.ResultCacheSize: identical /reason payloads for one app
	// share a cached chase run (with singleflight deduplication). 0
	// selects DefaultResultCacheSize; negative values are clamped to 1.
	ResultCacheSize int
	// RequestTimeout is the per-request reasoning deadline: the request
	// context handed to the chase carries it, and an overrun answers 408
	// within one round/chunk boundary. 0 selects DefaultRequestTimeout;
	// negative disables the deadline (client disconnect still cancels).
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently admitted reasoning requests
	// (/reason, /facts, /explain share one semaphore); at capacity
	// requests answer 503 immediately. 0 selects DefaultMaxInflight;
	// negative values are clamped to 1.
	MaxInflight int
	// MaxFacts caps the fact store of every chase run and session
	// (chase.Options.MaxFacts): a program that explodes past it fails with
	// 422 instead of exhausting memory. 0 = unlimited.
	MaxFacts int
	// Log receives panic reports and lifecycle messages; nil selects the
	// process-default logger.
	Log *log.Logger
}

// New compiles every bundled application into a server with default
// options.
func New() (*Server, error) { return NewWithOptions(Options{}) }

// NewWithOptions compiles every bundled application into a server.
func NewWithOptions(opts Options) (*Server, error) {
	if opts.MaxSessions == 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.MaxExplanations == 0 {
		opts.MaxExplanations = DefaultMaxExplanations
	}
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.MaxInflight < 1 {
		opts.MaxInflight = 1
	}
	switch {
	case opts.RequestTimeout == 0:
		opts.RequestTimeout = DefaultRequestTimeout
	case opts.RequestTimeout < 0:
		opts.RequestTimeout = 0
	}
	logger := opts.Log
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		pipes:        map[string]*core.Pipeline{},
		sessions:     lru.New[string, *session](opts.MaxSessions),
		explanations: lru.New[string, *explainResponse](opts.MaxExplanations),
		inflight:     make(chan struct{}, opts.MaxInflight),
		timeout:      opts.RequestTimeout,
		logf:         logger.Printf,
	}
	for _, a := range apps.All() {
		p, err := a.Pipeline(core.Config{
			Chase:                chase.Options{Workers: opts.ChaseWorkers, Batch: opts.ChaseBatch, MaxFacts: opts.MaxFacts},
			ResultCacheSize:      opts.ResultCacheSize,
			ExplanationCacheSize: opts.MaxExplanations,
		})
		if err != nil {
			return nil, fmt.Errorf("server: compiling %s: %w", a.Name, err)
		}
		s.pipes[a.Name] = p
	}
	return s, nil
}

// Handler returns the route multiplexer. The reasoning endpoints run behind
// the admission guard (bounded in-flight slots, per-request deadline); the
// cheap metadata endpoints bypass it so /stats stays observable under
// saturation; the whole mux runs behind panic recovery and the drain gate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps", s.handleApps)
	mux.HandleFunc("POST /reason", s.guard(s.handleReason))
	mux.HandleFunc("POST /facts", s.guard(s.handleFacts))
	mux.HandleFunc("GET /explain", s.guard(s.handleExplain))
	mux.HandleFunc("GET /paths", s.handlePaths)
	mux.HandleFunc("GET /stats", s.handleStats)
	return s.protect(mux)
}

// appInfo is one row of the /apps listing.
type appInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	var out []appInfo
	for _, a := range apps.All() {
		out = append(out, appInfo{Name: a.Name, Title: a.Title, Description: a.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// reasonRequest is the /reason payload.
type reasonRequest struct {
	// App is the application registry name.
	App string `json:"app"`
	// Facts holds extensional facts in concrete syntax (optional).
	Facts string `json:"facts,omitempty"`
	// Scenario loads the application's bundled scenario facts.
	Scenario bool `json:"scenario,omitempty"`
}

// reasonResponse reports the derived knowledge and the session id for
// follow-up explanation queries.
type reasonResponse struct {
	Session string   `json:"session"`
	Rounds  int      `json:"rounds"`
	Facts   int      `json:"facts"`
	Answers []string `json:"answers"`
}

func (s *Server) handleReason(w http.ResponseWriter, r *http.Request) {
	var req reasonRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	app, err := apps.ByName(req.App)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	pipe := s.pipe(req.App)
	extra := app.Scenario()
	if !req.Scenario {
		extra = nil
	}
	if req.Facts != "" {
		factProg, err := parser.Parse(req.Facts)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("facts: %w", err))
			return
		}
		extra = append(extra, factProg.Facts...)
	}
	res, err := pipe.ReasonContext(r.Context(), extra...)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.mu.Unlock()
	s.sessions.Put(id, &session{app: req.App, result: res, extra: extra})

	resp := reasonResponse{Session: id, Rounds: res.Rounds, Facts: res.Store.Len()}
	for _, fid := range res.Answers() {
		resp.Answers = append(resp.Answers, res.Store.Get(fid).String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// factsRequest is the /facts payload: base facts to add and retract, in
// concrete syntax (newline- or period-separated fact lists, same format as
// the /reason facts field).
type factsRequest struct {
	Session string `json:"session"`
	Add     string `json:"add,omitempty"`
	Retract string `json:"retract,omitempty"`
}

// factsResponse reports the repaired fixpoint and what the update did.
type factsResponse struct {
	Session string `json:"session"`
	// Epoch is the session's new version; explanations rendered before it
	// are no longer served.
	Epoch   uint64                  `json:"epoch"`
	Stats   incremental.UpdateStats `json:"stats"`
	Facts   int                     `json:"facts"`
	Answers []string                `json:"answers"`
	// InvalidatedExplanations counts cached renderings this update removed.
	InvalidatedExplanations int `json:"invalidatedExplanations"`
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	var req factsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
		return
	}
	parseFacts := func(field, src string) ([]ast.Atom, bool) {
		if src == "" {
			return nil, true
		}
		prog, err := parser.Parse(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", field, err))
			return nil, false
		}
		return prog.Facts, true
	}
	add, ok := parseFacts("add", req.Add)
	if !ok {
		return
	}
	retract, ok := parseFacts("retract", req.Retract)
	if !ok {
		return
	}

	// One mutation at a time per session: a request arriving while another
	// update holds the lock fails fast with 429 instead of queueing behind
	// a possibly long repair (its deadline would expire in the queue
	// anyway, poisoning the maintainer mid-repair for nothing).
	if !sess.mu.TryLock() {
		s.sessionBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("session %s has a mutation in flight; retry", req.Session))
		return
	}
	defer sess.mu.Unlock()
	if sess.mnt == nil {
		m, err := s.pipe(sess.app).MaintainContext(r.Context(), sess.extra...)
		if err != nil {
			s.writeEngineError(w, err)
			return
		}
		sess.mnt = m
	}
	res, stats, err := sess.mnt.UpdateContext(r.Context(), add, retract)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	sess.stateMu.Lock()
	sess.result = res
	sess.epoch = sess.mnt.Epoch()
	stale := sess.explKeys
	sess.explKeys = nil
	sess.stateMu.Unlock()
	invalidated := 0
	for _, key := range stale {
		if s.explanations.Remove(key) {
			invalidated++
		}
	}

	s.updates.Add(1)
	s.deltaRounds.Add(uint64(stats.DeltaRounds))
	s.overDeleted.Add(uint64(stats.OverDeleted))
	s.rederived.Add(uint64(stats.Rederived))
	s.invalidations.Add(uint64(invalidated))

	resp := factsResponse{
		Session:                 req.Session,
		Epoch:                   sess.epoch,
		Stats:                   stats,
		Facts:                   res.Store.LiveLen(),
		InvalidatedExplanations: invalidated,
	}
	for _, fid := range res.Answers() {
		resp.Answers = append(resp.Answers, res.Store.Get(fid).String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the JSON form of one explanation, including the proof
// provenance for graph front-ends.
type explainResponse struct {
	Fact           string      `json:"fact"`
	Text           string      `json:"text"`
	Deterministic  string      `json:"deterministic"`
	ReasoningPaths []string    `json:"reasoningPaths"`
	ProofSteps     []proofStep `json:"proofSteps"`
	Constants      []string    `json:"constants"`
	Complete       bool        `json:"complete"`
}

// proofStep is one chase step of the proof.
type proofStep struct {
	Rule     string   `json:"rule"`
	Premises []string `json:"premises"`
	Derived  string   `json:"derived"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sessionID := r.URL.Query().Get("session")
	sess := s.session(sessionID)
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
		return
	}
	query := r.URL.Query().Get("query")
	if query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing query parameter"))
		return
	}
	// Session ids are never reused and the session's epoch is part of the
	// key, so a cached rendering can only ever repeat a response this exact
	// session produced against its current fixpoint; the live-session check
	// above keeps evicted sessions from answering, and /facts removes the
	// previous epoch's entries. Errors are never cached.
	sess.stateMu.Lock()
	result, epoch := sess.result, sess.epoch
	sess.stateMu.Unlock()
	cacheKey := sessionID + "#" + strconv.FormatUint(epoch, 10) + "\x00" + query
	if resp, ok := s.explanations.Get(cacheKey); ok {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	pipe := s.pipe(sess.app)
	e, err := pipe.ExplainQuery(result, query)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := &explainResponse{
		Fact:           e.Fact.String(),
		Text:           e.Text,
		Deterministic:  e.Deterministic,
		ReasoningPaths: e.PathIDs(),
		Constants:      e.Proof.Constants(),
		Complete:       e.Verify() == nil,
	}
	for _, d := range e.Proof.Steps {
		step := proofStep{Rule: d.Rule.Label, Derived: result.Store.Get(d.Fact).String()}
		for _, p := range d.Premises {
			step.Premises = append(step.Premises, result.Store.Get(p).String())
		}
		resp.ProofSteps = append(resp.ProofSteps, step)
	}
	// Cache only if the session has not moved on while we rendered: an
	// entry for a superseded epoch would dodge the next invalidation sweep.
	sess.stateMu.Lock()
	if sess.epoch == epoch {
		s.explanations.Put(cacheKey, resp)
		sess.explKeys = append(sess.explKeys, cacheKey)
	}
	sess.stateMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /stats payload: serving-layer cache accounting plus
// per-application pipeline cache stats.
type statsResponse struct {
	// Sessions accounts the bounded session store.
	Sessions lru.Stats `json:"sessions"`
	// Explanations accounts the rendered-explanation cache.
	Explanations lru.Stats `json:"explanations"`
	// Apps maps application name to its pipeline cache stats (reasoning
	// results, explanation memo, deduplicated runs).
	Apps map[string]core.CacheStats `json:"apps"`
	// Incremental aggregates /facts maintenance work across all sessions.
	Incremental incrementalStats `json:"incremental"`
	// Columnar aggregates columnar index-maintenance work (rebuilds,
	// tail merges, tail refreshes, appended rows) across every fact store
	// in the process — the cost side of the batch executor's ledger.
	Columnar database.ColumnarStats `json:"columnar"`
	// Requests reports the request-lifecycle accounting (admission,
	// deadlines, contained panics).
	Requests requestStats `json:"requests"`
}

// incrementalStats is the /stats incremental-maintenance section.
type incrementalStats struct {
	// Updates counts successful /facts mutations.
	Updates uint64 `json:"updates"`
	// DeltaRounds is the total semi-naive rounds spent repairing fixpoints.
	DeltaRounds uint64 `json:"deltaRounds"`
	// OverDeleted is the total derived facts tombstoned by retractions.
	OverDeleted uint64 `json:"overDeleted"`
	// Rederived is the total over-deleted facts revived through alternative
	// proofs.
	Rederived uint64 `json:"rederived"`
	// Invalidations is the total cached explanations removed by mutations.
	Invalidations uint64 `json:"invalidations"`
}

// requestStats is the /stats request-lifecycle section.
type requestStats struct {
	// Inflight is the number of reasoning requests currently admitted, out
	// of MaxInflight slots.
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"maxInflight"`
	// Rejected counts requests answered 503 because every slot was taken.
	Rejected uint64 `json:"rejected"`
	// Timeouts counts requests answered 408 because reasoning overran the
	// per-request deadline.
	Timeouts uint64 `json:"timeouts"`
	// ClientGone counts reasoning runs abandoned because the client
	// disconnected (status 499 in logs; the client never sees it).
	ClientGone uint64 `json:"clientGone"`
	// Panics counts handler panics contained by the recovery middleware.
	Panics uint64 `json:"panics"`
	// SessionBusy counts mutations answered 429 because their session
	// already had an update in flight.
	SessionBusy uint64 `json:"sessionBusy"`
	// Draining reports whether the server is refusing new work for
	// shutdown.
	Draining bool `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Sessions:     s.sessions.Stats(),
		Explanations: s.explanations.Stats(),
		Apps:         map[string]core.CacheStats{},
		Incremental: incrementalStats{
			Updates:       s.updates.Load(),
			DeltaRounds:   s.deltaRounds.Load(),
			OverDeleted:   s.overDeleted.Load(),
			Rederived:     s.rederived.Load(),
			Invalidations: s.invalidations.Load(),
		},
		Columnar: database.GlobalColumnarStats(),
		Requests: requestStats{
			Inflight:    len(s.inflight),
			MaxInflight: cap(s.inflight),
			Rejected:    s.rejected.Load(),
			Timeouts:    s.timeouts.Load(),
			ClientGone:  s.clientGone.Load(),
			Panics:      s.panics.Load(),
			SessionBusy: s.sessionBusy.Load(),
			Draining:    s.draining.Load(),
		},
	}
	for name, pipe := range s.pipes {
		resp.Apps[name] = pipe.CacheStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// pathInfo is one reasoning path of /paths.
type pathInfo struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"`
	Rules  []string `json:"rules"`
	Dashed bool     `json:"dashed"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("app")
	pipe := s.pipe(name)
	if pipe == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown application %q", name))
		return
	}
	var out []pathInfo
	for _, p := range pipe.Analysis().All() {
		out = append(out, pathInfo{
			ID:     p.ID,
			Kind:   p.Kind.String(),
			Rules:  p.RuleLabels(),
			Dashed: p.Dashed,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pipe returns the compiled pipeline for an app; pipes is immutable after
// construction so no locking is needed.
func (s *Server) pipe(name string) *core.Pipeline {
	return s.pipes[name]
}

func (s *Server) session(id string) *session {
	sess, _ := s.sessions.Get(id)
	return sess
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
