package server

// Request-lifecycle tests: bounded bodies (413), strict decoding (400),
// per-request deadlines (408), admission control (503), session mutation
// backpressure (429), panic containment (500), fact-limit overruns (422,
// never 500), drain gating, slowloris transport timeouts, and the overload
// smoke test with goroutine leak checking.

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

func newTestServerFull(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	s, err := NewWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func TestRequestBodyTooLarge(t *testing.T) {
	ts := newTestServer(t)
	big := `{"app":"company-control","facts":"` + strings.Repeat("x", maxRequestBody+1) + `"}`
	for _, path := range []string{"/reason", "/facts"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversize body: status = %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct{ path, body string }{
		{"/reason", `{"app":"company-control","bogusField":1}`},
		{"/facts", `{"session":"s1","bogusField":1}`},
	}
	for _, c := range cases {
		body, code := postBody(t, ts.URL+c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s unknown field: status = %d, want 400", c.path, code)
		}
		if !strings.Contains(string(body), "bogusField") {
			t.Errorf("%s error does not name the offending field: %s", c.path, body)
		}
	}
}

// postBody posts a JSON body and returns the raw response and status.
func postBody(t *testing.T, url, body string) ([]byte, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

func TestRequestTimeout408(t *testing.T) {
	// A 1ns deadline is expired by the time the chase makes its first
	// cancellation check, so every reasoning request answers 408 without
	// any race on wall time.
	ts, s := newTestServerFull(t, Options{RequestTimeout: time.Nanosecond})
	body, code := postBody(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body %s)", code, body)
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests.Timeouts != 1 {
		t.Errorf("/stats timeouts = %d, want 1", st.Requests.Timeouts)
	}
}

func TestMaxInflight503(t *testing.T) {
	ts, s := newTestServerFull(t, Options{MaxInflight: 1})
	occupied := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookInflight = func() {
		once.Do(func() {
			close(occupied)
			<-release
		})
	}
	firstDone := make(chan int, 1)
	go func() {
		_, code := postBody(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`)
		firstDone <- code
	}()
	<-occupied // the only slot is now held
	resp, err := http.Post(ts.URL+"/reason", "application/json",
		strings.NewReader(`{"app":"stress-simple","scenario":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	// Unguarded endpoints stay reachable while reasoning is saturated.
	if _, code := getBody(t, ts.URL+"/stats"); code != http.StatusOK {
		t.Errorf("/stats under saturation: status = %d", code)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("admitted request: status = %d", code)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	var buf syncBuffer
	s, err := NewWithOptions(Options{Log: log.New(&buf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	h := s.protect(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/explain", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", buf.String())
	}
	// A second request is served normally: the panic was contained.
	rec2 := httptest.NewRecorder()
	s.protect(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})).ServeHTTP(rec2, httptest.NewRequest("GET", "/apps", nil))
	if rec2.Code != http.StatusOK {
		t.Errorf("after panic: status = %d", rec2.Code)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSessionBusy429 exercises queue-full backpressure: with the commit
// leader pinned mid-apply and the session's write queue (capacity 1) full,
// one more write answers 429 — the only 429 the write path produces.
// Contention below that coalesces into batches instead of bouncing.
func TestSessionBusy429(t *testing.T) {
	ts, s := newTestServerFull(t, Options{WriteQueue: 1})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	sess := s.session(rr.Session)
	if sess == nil {
		t.Fatal("session not found")
	}
	applying := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookApply = func() {
		once.Do(func() {
			close(applying)
			<-release
		})
	}
	codes := make(chan int, 2)
	go func() {
		_, code := postBody(t, ts.URL+"/facts",
			`{"session":"`+rr.Session+`","add":"Own(\"Y\",\"Z\",0.7)."}`)
		codes <- code
	}()
	<-applying // the leader is now pinned applying the first write
	go func() {
		_, code := postBody(t, ts.URL+"/facts",
			`{"session":"`+rr.Session+`","add":"Own(\"Z\",\"W\",0.8)."}`)
		codes <- code
	}()
	waitFor(t, func() bool { return sess.cmt.Pending() == 1 }) // queue full
	resp, err := http.Post(ts.URL+"/facts", "application/json",
		strings.NewReader(`{"session":"`+rr.Session+`","add":"Own(\"W\",\"V\",0.9)."}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full write queue: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	// Reads never join the write queue: the last published fixpoint keeps
	// serving explanations while the commit is in flight.
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Y%22)`); code != http.StatusOK {
		t.Errorf("explain during commit: status = %d", code)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("queued write: status = %d, want 200", code)
		}
	}
	if got := s.sessionBusy.Load(); got != 1 {
		t.Errorf("sessionBusy counter = %d, want 1", got)
	}
}

// waitFor polls until cond holds; every condition used with it is monotone.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFactLimit422 drives a session into Options.MaxFacts through POST
// /facts. The failed repair must never surface as a 500: the update answers
// 422, and from then on the session is either still consistent or cleanly
// poisoned — every later interaction is a well-formed 4xx and the last
// consistent fixpoint keeps serving explanations.
func TestFactLimit422(t *testing.T) {
	ts := newTestServerFull1(t, Options{MaxFacts: 40})
	var rr reasonResponse
	resp := postJSON(t, ts.URL+"/reason",
		`{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).\nOwn(\"Y\",\"Z\",0.7)."}`, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial reason under limit: status = %d", resp.StatusCode)
	}
	explainURL := ts.URL + "/explain?session=" + rr.Session + `&query=Control(%22X%22,%22Z%22)`
	if _, code := getBody(t, explainURL); code != http.StatusOK {
		t.Fatalf("initial explain: status = %d", code)
	}

	// A long high-share chain explodes the transitive closure past the cap.
	var adds []string
	for i := 0; i < 24; i++ {
		adds = append(adds, fmt.Sprintf(`Own(\"N%d\",\"N%d\",0.9).`, i, i+1))
	}
	body, code := postBody(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"`+strings.Join(adds, `\n`)+`"}`)
	if code == http.StatusInternalServerError {
		t.Fatalf("fact-limit overrun surfaced as 500: %s", body)
	}
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("fact-limit overrun: status = %d, want 422 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "fact limit") {
		t.Errorf("error does not mention the fact limit: %s", body)
	}

	// The session is cleanly poisoned or untouched — never half-mutated:
	// further mutations answer 422 (not 500), and the pre-failure fixpoint
	// still serves explanations.
	body, code = postBody(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"Own(\"Q\",\"R\",0.6)."}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("mutation after overrun: status = %d, want 422 (body %s)", code, body)
	}
	if _, code := getBody(t, explainURL); code != http.StatusOK {
		t.Errorf("explain after overrun: status = %d, want 200 (last consistent fixpoint)", code)
	}
}

// newTestServerFull1 is newTestServerFull without the *Server (keeps the
// call sites that only need the URL tidy).
func newTestServerFull1(t *testing.T, opts Options) *httptest.Server {
	ts, _ := newTestServerFull(t, opts)
	return ts
}

func TestDrainingRejectsNewWork(t *testing.T) {
	ts, s := newTestServerFull(t, Options{})
	s.SetDraining(true)
	if _, code := postBody(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`); code != http.StatusServiceUnavailable {
		t.Errorf("draining /reason: status = %d, want 503", code)
	}
	if _, code := getBody(t, ts.URL+"/apps"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /apps: status = %d, want 503", code)
	}
	var st statsResponse
	resp := getJSON(t, ts.URL+"/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /stats: status = %d, want 200 (observability stays up)", resp.StatusCode)
	}
	if !st.Requests.Draining {
		t.Errorf("/stats does not report draining")
	}
	s.SetDraining(false)
	if _, code := postBody(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`); code != http.StatusOK {
		t.Errorf("after drain cleared: status = %d", code)
	}
}

// TestSlowClientDisconnected is the slowloris regression: a client that
// trickles its request headers is cut off by ReadHeaderTimeout instead of
// holding a connection goroutine forever.
func TestSlowClientDisconnected(t *testing.T) {
	defer leakcheck.Check(t)()
	s, err := NewWithOptions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer("", s.Handler(), HTTPTimeouts{ReadHeader: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and then stall, like a slowloris client.
	if _, err := conn.Write([]byte("GET /apps HTTP/1.1\r\nHost: local")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	_, rerr := conn.Read(buf)
	if rerr == nil {
		t.Fatalf("slow client was answered instead of disconnected")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("slow client held the connection for %s, want < ReadHeaderTimeout-ish", elapsed)
	}
}

// TestOverloadBackpressure is the CI overload smoke test: under
// MaxInflight=1 with the only slot pinned, a burst of requests all answer
// 503 immediately, the admitted request completes, and no goroutine leaks.
func TestOverloadBackpressure(t *testing.T) {
	check := leakcheck.Check(t)
	s, err := NewWithOptions(Options{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	occupied := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookInflight = func() {
		once.Do(func() {
			close(occupied)
			<-release
		})
	}
	firstDone := make(chan int, 1)
	go func() {
		_, code := postBody(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`)
		firstDone <- code
	}()
	<-occupied

	const burst = 8
	var wg sync.WaitGroup
	codes := make(chan int, burst)
	start := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/reason", "application/json",
				strings.NewReader(`{"app":"stress-simple","scenario":true}`))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	// Fail-fast: the whole burst was rejected while the slot was held, so
	// no request waited for the slow leader (queue growth would show up as
	// burst duration approaching the leader's runtime).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("burst took %s — requests queued instead of failing fast", elapsed)
	}
	close(codes)
	for code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Errorf("burst request: status = %d, want 503", code)
		}
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("admitted request: status = %d", code)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests.Rejected < burst {
		t.Errorf("rejected counter = %d, want >= %d", st.Requests.Rejected, burst)
	}
	if st.Requests.Inflight != 0 {
		t.Errorf("inflight = %d after drain, want 0", st.Requests.Inflight)
	}
	// Tear down the server and the client's keep-alive connections before
	// the leak check: idle transport goroutines are not leaks.
	http.DefaultClient.CloseIdleConnections()
	ts.Close()
	check()
}

// TestConcurrentCancelAndReason (run under -race) mixes clients that cancel
// mid-request with clients that run to completion: the server must keep
// serving correct responses, and abandoned runs must not corrupt the
// pipeline caches.
func TestConcurrentCancelAndReason(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/reason",
				strings.NewReader(`{"app":"stress-test","scenario":true}`))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close() // fast machine: the request simply won
			}
		}(i)
	}
	// Interleaved full-speed requests must succeed throughout.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rr reasonResponse
			resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-test","scenario":true}`, &rr)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent reason: status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	// The dust settled: a fresh request still reasons correctly.
	var rr reasonResponse
	if resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-test","scenario":true}`, &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("final reason: status = %d", resp.StatusCode)
	}
	if len(rr.Answers) == 0 {
		t.Error("final reason returned no answers")
	}
}
