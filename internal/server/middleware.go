package server

// Request-lifecycle middleware: admission control, per-request deadlines,
// panic containment and drain gating. The reasoning endpoints (/reason,
// /facts, /explain) run behind guard — a bounded in-flight semaphore that
// fails fast with 503 at capacity and stamps a deadline into the request
// context — and the whole mux runs behind protect, which turns handler
// panics into logged 500s and rejects new work (except /stats) while the
// server is draining for shutdown. See ARCHITECTURE.md, "Request lifecycle
// and overload behavior".

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"

	"repro/internal/chase"
	"repro/internal/incremental"
)

// maxRequestBody bounds every JSON request body; oversize bodies answer 413
// before the decoder buffers them.
const maxRequestBody = 1 << 20

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// reported when reasoning was abandoned because the client went away; the
// client never sees it, but it keeps access logs and /stats honest.
const StatusClientClosedRequest = 499

// guard admission-controls one reasoning endpoint: a semaphore slot is
// acquired without blocking (full → immediate 503, no queue growth), and the
// request context gets the per-request deadline. The slot is held for the
// handler's whole run, so cap(inflight) bounds concurrent reasoning work.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("server at capacity (%d requests in flight); retry", cap(s.inflight)))
			return
		}
		if hook := s.testHookInflight; hook != nil {
			hook()
		}
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// protect wraps the whole mux: it rejects new work while the server drains
// (503, so load balancers retry elsewhere; /stats stays up for observers)
// and converts handler panics into logged 500s instead of killing the
// connection — one poisoned request must not take the process down with it.
func (s *Server) protect(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && r.URL.Path != "/stats" {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is shutting down"))
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, errors.New("internal error"))
				}
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// statusRecorder remembers whether a handler already wrote headers, so the
// panic recovery knows whether a 500 can still be sent.
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// decodeJSON decodes one bounded, strict JSON request body into v. On
// failure it has already written the response: 413 when the body exceeds
// maxRequestBody, 400 (naming the offending field) on unknown fields, 400 on
// malformed JSON.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return false
	}
	return true
}

// writeEngineError maps a reasoning-layer error onto the response status:
// a poisoned session maintainer is a client-visible 422 (the session is
// permanently unusable — open a new one), a deadline is 408, a client
// disconnect is 499, and everything else (constraint violations, fact
// limits, parse-adjacent engine errors) is 422.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, incremental.ErrPoisoned):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, chase.ErrDeadline):
		s.timeouts.Add(1)
		writeError(w, http.StatusRequestTimeout, err)
	case errors.Is(err, chase.ErrCanceled):
		s.clientGone.Add(1)
		writeError(w, StatusClientClosedRequest, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// SetDraining flips drain mode: while draining, every endpoint except
// /stats answers 503 so that a load balancer stops routing here, while
// requests already in flight finish normally (http.Server.Shutdown waits
// for them).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }
