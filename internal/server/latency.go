package server

import (
	"sync/atomic"
	"time"
)

// latencyBoundsMs are the bucket upper bounds (milliseconds) of the fixed
// log-scale latency histogram; observations past the last bound land in an
// overflow bucket whose quantile reports the exact observed maximum.
var latencyBoundsMs = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// latencyHist is a fixed-bucket latency histogram cheap enough to sit on
// the restore path: one atomic add per observation, no locks, no
// allocation. Quantiles read from it are bucket upper bounds — the true
// quantile is at most the reported value.
type latencyHist struct {
	buckets  [len(latencyBoundsMs) + 1]atomic.Uint64
	maxNanos atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBoundsMs) && ms > latencyBoundsMs[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		cur := h.maxNanos.Load()
		if int64(d) <= cur || h.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// latencySummary is the JSON form of a latencyHist on /stats.
type latencySummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

func (h *latencyHist) summary() latencySummary {
	var counts [len(latencyBoundsMs) + 1]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	out := latencySummary{Count: total, MaxMs: float64(h.maxNanos.Load()) / float64(time.Millisecond)}
	if total == 0 {
		return out
	}
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(total))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= rank {
				if i < len(latencyBoundsMs) {
					return latencyBoundsMs[i]
				}
				break
			}
		}
		return out.MaxMs
	}
	out.P50Ms = quantile(0.50)
	out.P90Ms = quantile(0.90)
	out.P99Ms = quantile(0.99)
	return out
}
