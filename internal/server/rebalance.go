package server

// The rebalance control plane: three small endpoints the router drives
// when ring membership changes, so sessions move to their new hash owner
// proactively instead of stampeding through restore-on-first-touch.
//
//	GET  /sessions   the resident session ids of this worker
//	POST /release    {"sessions": [...]} — checkpoint and release each named
//	                 session; when it answers, the state is durable and the
//	                 WAL handle closed, so another worker can restore it
//	                 without racing this process
//	POST /prewarm    {"sessions": [...]} — restore each named session ahead
//	                 of first touch (through the same per-session
//	                 singleflight as on-demand restore, so live traffic
//	                 racing the prewarm simply joins it)
//
// The protocol is release-then-prewarm per batch: the old owner's handles
// are closed before the new owner opens them, which keeps two processes
// from appending to one session's WAL.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// rebalanceWorkers bounds how many sessions one /release or /prewarm
// request checkpoints or restores concurrently.
const rebalanceWorkers = 4

// sessionListResponse is the GET /sessions body.
type sessionListResponse struct {
	Sessions []string `json:"sessions"`
}

// sessionSetRequest is the POST /release and /prewarm payload.
type sessionSetRequest struct {
	Sessions []string `json:"sessions"`
}

// releaseResponse reports the handoff: Released sessions are durable on
// disk with their write-path resources closed.
type releaseResponse struct {
	Released int `json:"released"`
}

// prewarmResponse reports the warm-up: Restored sessions are resident,
// Failed ones had unusable (or no) durable state and will answer through
// the normal restore/404 path on first touch.
type prewarmResponse struct {
	Restored int `json:"restored"`
	Failed   int `json:"failed"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	resp := sessionListResponse{Sessions: s.sessions.Keys()}
	if resp.Sessions == nil {
		resp.Sessions = []string{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRelease checkpoints and releases the named sessions: resident
// ones leave the session table through the eviction path — the
// retirement is registered atomically with the removal, so a concurrent
// restore of the same id blocks on it instead of racing the in-flight
// retire — and ones already in a background retirement are waited out.
// Either way, when a 200 arrives every named session this worker held is
// durable with its WAL handle closed, safe for another process to
// restore. If any wait is cut short (request canceled or timed out) the
// handler answers 503: a retirement may still be running, so the caller
// must not let another worker open the session's files yet.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req sessionSetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if s.walDir == "" {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("no WAL directory: sessions are volatile and cannot be handed off"))
		return
	}
	var (
		released atomic.Int64
		wg       sync.WaitGroup
		slots    = make(chan struct{}, rebalanceWorkers)
		errMu    sync.Mutex
		waitErr  error
	)
	for _, id := range req.Sessions {
		wg.Add(1)
		slots <- struct{}{}
		go func(id string) {
			defer wg.Done()
			defer func() { <-slots }()
			// Evict runs the retirement hooks exactly like a capacity
			// eviction: registration under the cache lock, then the
			// (possibly queued) quiesce-checkpoint-close.
			evicted := s.sessions.Evict(id)
			// Whether this request triggered the retirement or one was
			// already in flight, the release promise only holds once the
			// files are final.
			if err := s.waitRetirement(r.Context(), id); err != nil {
				errMu.Lock()
				if waitErr == nil {
					waitErr = fmt.Errorf("session %s: %w", id, err)
				}
				errMu.Unlock()
				return
			}
			if evicted {
				released.Add(1)
			}
		}(id)
	}
	wg.Wait()
	s.releases.Add(uint64(released.Load()))
	if waitErr != nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("release incomplete (retirements may still be running): %w", waitErr))
		return
	}
	writeJSON(w, http.StatusOK, releaseResponse{Released: int(released.Load())})
}

// handlePrewarm restores the named sessions ahead of first touch. Each
// restore goes through the per-session singleflight, so a live request
// racing the prewarm shares the work instead of duplicating it; sessions
// already resident count as restored. Failures are per-session and
// non-fatal — a session that cannot prewarm simply restores (or 404s) on
// first touch as before.
func (s *Server) handlePrewarm(w http.ResponseWriter, r *http.Request) {
	var req sessionSetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if s.walDir == "" {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("no WAL directory: nothing to prewarm from"))
		return
	}
	var (
		restored, failed atomic.Int64
		wg               sync.WaitGroup
		slots            = make(chan struct{}, rebalanceWorkers)
	)
	for _, id := range req.Sessions {
		wg.Add(1)
		slots <- struct{}{}
		go func(id string) {
			defer wg.Done()
			defer func() { <-slots }()
			ctx := r.Context()
			if s.timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.timeout)
				defer cancel()
			}
			sess, err := s.restore(ctx, id)
			switch {
			case err != nil:
				s.logf("server: prewarm %s: %v", id, err)
				failed.Add(1)
			case sess == nil:
				failed.Add(1)
			default:
				restored.Add(1)
			}
		}(id)
	}
	wg.Wait()
	s.prewarms.Add(uint64(restored.Load()))
	writeJSON(w, http.StatusOK, prewarmResponse{
		Restored: int(restored.Load()),
		Failed:   int(failed.Load()),
	})
}
