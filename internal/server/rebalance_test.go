package server

// Tests for the rebalance control plane: /sessions lists residents,
// /release checkpoints and quiesces sessions for handoff, /prewarm
// restores them ahead of first touch — the worker half of the router's
// proactive migration protocol.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestRebalanceControlPlane(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir})
	ids, before := seedSessions(t, ts.URL, 2)

	// GET /sessions lists both residents.
	var list sessionListResponse
	getJSON(t, ts.URL+"/sessions", &list)
	sort.Strings(list.Sessions)
	want := append([]string(nil), ids...)
	sort.Strings(want)
	if len(list.Sessions) != 2 || list.Sessions[0] != want[0] || list.Sessions[1] != want[1] {
		t.Fatalf("/sessions = %v, want %v", list.Sessions, want)
	}

	// POST /release checkpoints both and drops them from the table; their
	// snapshots are on disk when the response arrives.
	var rel releaseResponse
	if resp := postJSON(t, ts.URL+"/release",
		`{"sessions":["`+ids[0]+`","`+ids[1]+`"]}`, &rel); resp.StatusCode != http.StatusOK {
		t.Fatalf("/release status = %d", resp.StatusCode)
	}
	if rel.Released != 2 {
		t.Errorf("released = %d, want 2", rel.Released)
	}
	for _, id := range ids {
		if s.session(id) != nil {
			t.Errorf("session %s still resident after release", id)
		}
		if _, err := os.Stat(s.snapPath(id)); err != nil {
			t.Errorf("session %s has no snapshot after release: %v", id, err)
		}
	}
	// Releasing ids that are gone (or never existed) is idempotent.
	if resp := postJSON(t, ts.URL+"/release",
		`{"sessions":["`+ids[0]+`","no-such"]}`, &rel); resp.StatusCode != http.StatusOK || rel.Released != 0 {
		t.Errorf("idempotent release: status %d released %d, want 200/0", resp.StatusCode, rel.Released)
	}

	// POST /prewarm restores both; an id with no durable state counts as
	// failed without failing the batch.
	var pre prewarmResponse
	if resp := postJSON(t, ts.URL+"/prewarm",
		`{"sessions":["`+ids[0]+`","`+ids[1]+`","no-such"]}`, &pre); resp.StatusCode != http.StatusOK {
		t.Fatalf("/prewarm status = %d", resp.StatusCode)
	}
	if pre.Restored != 2 || pre.Failed != 1 {
		t.Errorf("prewarm = %+v, want restored 2 failed 1", pre)
	}
	for i, id := range ids {
		if s.session(id) == nil {
			t.Errorf("session %s not resident after prewarm", id)
			continue
		}
		var rr reasonResponse
		postJSON(t, ts.URL+"/reason", `{"session":"`+id+`"}`, &rr)
		if rr.Epoch != before[i].Epoch || rr.Facts != before[i].Facts {
			t.Errorf("session %s after release+prewarm: %+v, want %+v", id, rr, before[i])
		}
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Released != 2 || st.WritePath.Prewarmed != 2 {
		t.Errorf("stats released/prewarmed = %d/%d, want 2/2", st.WritePath.Released, st.WritePath.Prewarmed)
	}
}

// TestRebalanceRequiresDurability: without a WAL directory there is nothing
// to hand off or prewarm from — both mutating endpoints answer 422.
func TestRebalanceRequiresDurability(t *testing.T) {
	ts, _ := newTestServerFull(t, Options{})
	for _, path := range []string{"/release", "/prewarm"} {
		if resp := postJSON(t, ts.URL+path, `{"sessions":["x"]}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s on a volatile server: status %d, want 422", path, resp.StatusCode)
		}
	}
}

// TestReleaseWaitsOutBackgroundRetirement: a /release naming a session
// already in a background retirement must not answer until that retirement
// finishes — the release promise ("durable, handle closed") has to hold.
func TestReleaseWaitsOutBackgroundRetirement(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids, _ := seedSessions(t, ts.URL, 1)
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evicts
	<-retiring

	done := make(chan struct{})
	go func() {
		postJSON(t, ts.URL+"/release", `{"sessions":["`+ids[0]+`"]}`, nil)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("/release answered while the named session's retirement was still writing")
	case <-time.After(100 * time.Millisecond):
	}
	close(finish)
	<-done
	if _, err := os.Stat(s.snapPath(ids[0])); err != nil {
		t.Errorf("released session has no snapshot: %v", err)
	}
}

// TestRestoreWaitsOutReleaseRetirement: a restore racing a /release of the
// same session must block until the release-driven retirement has closed
// the WAL handle — under the old code /release retired without registering
// in the retiring table, so the restore skipped the barrier and could
// reopen the WAL while the retire was still writing.
func TestRestoreWaitsOutReleaseRetirement(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids, before := seedSessions(t, ts.URL, 1)

	relDone := make(chan releaseResponse, 1)
	go func() {
		var rel releaseResponse
		postJSON(t, ts.URL+"/release", `{"sessions":["`+ids[0]+`"]}`, &rel)
		relDone <- rel
	}()
	select {
	case id := <-retiring:
		if id != ids[0] {
			t.Fatalf("retiring %q, want %q", id, ids[0])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("/release never started the session's retirement")
	}

	// While the release-driven retirement is parked on the hook, a read of
	// the session must wait — not restore over the in-flight retire.
	readDone := make(chan reasonResponse, 1)
	go func() {
		var rr reasonResponse
		postJSON(t, ts.URL+"/reason", `{"session":"`+ids[0]+`"}`, &rr)
		readDone <- rr
	}()
	select {
	case <-readDone:
		t.Fatal("restore completed while the release-driven retirement was still writing")
	case <-relDone:
		t.Fatal("/release answered while its retirement was still writing")
	case <-time.After(100 * time.Millisecond):
	}

	close(finish)
	select {
	case rr := <-readDone:
		if rr.Epoch != before[0].Epoch {
			t.Errorf("restored epoch = %d, want %d", rr.Epoch, before[0].Epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed after the retirement finished")
	}
	select {
	case rel := <-relDone:
		if rel.Released != 1 {
			t.Errorf("released = %d, want 1", rel.Released)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/release never answered after the retirement finished")
	}
}

// TestReleaseAbortsOnCanceledWait: a /release whose context dies while a
// named session's retirement is still running must answer non-200 — a 200
// would promise the files are final and let the router prewarm the session
// on another worker while this one still holds the WAL handle open.
func TestReleaseAbortsOnCanceledWait(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	// Unpark the retirement and drain it before the temp dir is cleaned up.
	defer func() {
		close(finish)
		s.drainRetirements()
	}()
	handler := s.Handler()

	ts := httptest.NewServer(handler)
	defer ts.Close()
	ids, _ := seedSessions(t, ts.URL, 1)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/release",
		strings.NewReader(`{"sessions":["`+ids[0]+`"]}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	served := make(chan struct{})
	go func() {
		handler.ServeHTTP(rec, req)
		close(served)
	}()
	<-retiring // the release-driven retirement is parked
	cancel()   // the request dies mid-wait
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("/release never answered after its context was canceled")
	}
	if rec.Code == http.StatusOK {
		t.Fatalf("/release answered 200 with its retirement still running; body: %s", rec.Body.String())
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/release status = %d, want 503", rec.Code)
	}
}
