package server

// Tests for the rebalance control plane: /sessions lists residents,
// /release checkpoints and quiesces sessions for handoff, /prewarm
// restores them ahead of first touch — the worker half of the router's
// proactive migration protocol.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"
)

func TestRebalanceControlPlane(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir})
	ids, before := seedSessions(t, ts.URL, 2)

	// GET /sessions lists both residents.
	var list sessionListResponse
	getJSON(t, ts.URL+"/sessions", &list)
	sort.Strings(list.Sessions)
	want := append([]string(nil), ids...)
	sort.Strings(want)
	if len(list.Sessions) != 2 || list.Sessions[0] != want[0] || list.Sessions[1] != want[1] {
		t.Fatalf("/sessions = %v, want %v", list.Sessions, want)
	}

	// POST /release checkpoints both and drops them from the table; their
	// snapshots are on disk when the response arrives.
	var rel releaseResponse
	if resp := postJSON(t, ts.URL+"/release",
		`{"sessions":["`+ids[0]+`","`+ids[1]+`"]}`, &rel); resp.StatusCode != http.StatusOK {
		t.Fatalf("/release status = %d", resp.StatusCode)
	}
	if rel.Released != 2 {
		t.Errorf("released = %d, want 2", rel.Released)
	}
	for _, id := range ids {
		if s.session(id) != nil {
			t.Errorf("session %s still resident after release", id)
		}
		if _, err := os.Stat(s.snapPath(id)); err != nil {
			t.Errorf("session %s has no snapshot after release: %v", id, err)
		}
	}
	// Releasing ids that are gone (or never existed) is idempotent.
	if resp := postJSON(t, ts.URL+"/release",
		`{"sessions":["`+ids[0]+`","no-such"]}`, &rel); resp.StatusCode != http.StatusOK || rel.Released != 0 {
		t.Errorf("idempotent release: status %d released %d, want 200/0", resp.StatusCode, rel.Released)
	}

	// POST /prewarm restores both; an id with no durable state counts as
	// failed without failing the batch.
	var pre prewarmResponse
	if resp := postJSON(t, ts.URL+"/prewarm",
		`{"sessions":["`+ids[0]+`","`+ids[1]+`","no-such"]}`, &pre); resp.StatusCode != http.StatusOK {
		t.Fatalf("/prewarm status = %d", resp.StatusCode)
	}
	if pre.Restored != 2 || pre.Failed != 1 {
		t.Errorf("prewarm = %+v, want restored 2 failed 1", pre)
	}
	for i, id := range ids {
		if s.session(id) == nil {
			t.Errorf("session %s not resident after prewarm", id)
			continue
		}
		var rr reasonResponse
		postJSON(t, ts.URL+"/reason", `{"session":"`+id+`"}`, &rr)
		if rr.Epoch != before[i].Epoch || rr.Facts != before[i].Facts {
			t.Errorf("session %s after release+prewarm: %+v, want %+v", id, rr, before[i])
		}
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Released != 2 || st.WritePath.Prewarmed != 2 {
		t.Errorf("stats released/prewarmed = %d/%d, want 2/2", st.WritePath.Released, st.WritePath.Prewarmed)
	}
}

// TestRebalanceRequiresDurability: without a WAL directory there is nothing
// to hand off or prewarm from — both mutating endpoints answer 422.
func TestRebalanceRequiresDurability(t *testing.T) {
	ts, _ := newTestServerFull(t, Options{})
	for _, path := range []string{"/release", "/prewarm"} {
		if resp := postJSON(t, ts.URL+path, `{"sessions":["x"]}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s on a volatile server: status %d, want 422", path, resp.StatusCode)
		}
	}
}

// TestReleaseWaitsOutBackgroundRetirement: a /release naming a session
// already in a background retirement must not answer until that retirement
// finishes — the release promise ("durable, handle closed") has to hold.
func TestReleaseWaitsOutBackgroundRetirement(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids, _ := seedSessions(t, ts.URL, 1)
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evicts
	<-retiring

	done := make(chan struct{})
	go func() {
		postJSON(t, ts.URL+"/release", `{"sessions":["`+ids[0]+`"]}`, nil)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("/release answered while the named session's retirement was still writing")
	case <-time.After(100 * time.Millisecond):
	}
	close(finish)
	<-done
	if _, err := os.Stat(s.snapPath(ids[0])); err != nil {
		t.Errorf("released session has no snapshot: %v", err)
	}
}
