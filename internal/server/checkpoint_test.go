package server

// Checkpoint-layer tests: WAL compaction (checkpoint fixpoint, truncate log
// to a tail), eviction-to-snapshot (no full replay when a snapshot exists),
// snapshot-then-handoff across server instances sharing a directory,
// corrupt-snapshot fallback to full replay, and client-assigned session ids.

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// writeFact commits one Own edge to the session and returns the response.
func writeFact(t *testing.T, url, session, from, to string, weight float64) factsResponse {
	t.Helper()
	var fr factsResponse
	body := fmt.Sprintf(`{"session":%q,"add":"Own(\"%s\",\"%s\",%g)."}`, session, from, to, weight)
	if resp := postJSON(t, url+"/facts", body, &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("facts %s->%s: status = %d", from, to, resp.StatusCode)
	}
	return fr
}

func sessionRead(t *testing.T, url, session string) reasonResponse {
	t.Helper()
	var rr reasonResponse
	if resp := postJSON(t, url+"/reason", fmt.Sprintf(`{"session":%q}`, session), &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("session read: status = %d", resp.StatusCode)
	}
	return rr
}

func TestCompactionCheckpointsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir, CompactCommits: 3})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	for i := 0; i < 7; i++ {
		writeFact(t, ts.URL, rr.Session, fmt.Sprintf("e%d", i), fmt.Sprintf("e%d", i+1), 0.7)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Compactions < 2 {
		t.Errorf("compactions = %d, want >= 2 after 7 commits at threshold 3", st.WritePath.Compactions)
	}
	// The log is a tail: its header starts at the last checkpoint epoch and
	// carries fewer deltas than were committed.
	rec, err := wal.Replay(filepath.Join(dir, rr.Session+".wal"))
	if err != nil {
		t.Fatalf("replaying compacted log: %v", err)
	}
	if rec.Header.StartSeq == 0 {
		t.Error("compacted log still claims to start at epoch 0")
	}
	if n := len(rec.Deltas); n >= 7 {
		t.Errorf("compacted log holds %d deltas, want < 7", n)
	}
	h, err := snapshot.ReadHeader(filepath.Join(dir, rr.Session+".snap"))
	if err != nil {
		t.Fatalf("snapshot header: %v", err)
	}
	if h.Epoch != rec.Header.StartSeq {
		t.Errorf("snapshot epoch %d != log StartSeq %d", h.Epoch, rec.Header.StartSeq)
	}

	// Restore across eviction reproduces the state: snapshot plus short tail.
	before := sessionRead(t, ts.URL, rr.Session)
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evict via MaxSessions=1? no: capacity default
	s.sessions.Remove(rr.Session)                                                 // drop the handle without the eviction hook: simulate crash
	after := sessionRead(t, ts.URL, rr.Session)
	if after.Epoch != before.Epoch || strings.Join(after.Answers, "\n") != strings.Join(before.Answers, "\n") {
		t.Errorf("restored state differs:\nbefore %+v\nafter  %+v", before, after)
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.SnapshotRestores == 0 {
		t.Error("restore after compaction did not use the snapshot")
	}
	if st.WritePath.TailReplays > 3 {
		t.Errorf("tail replays = %d, want <= threshold 3", st.WritePath.TailReplays)
	}
}

// TestEvictionSnapshotSkipsFullReplay is the eviction regression: evicting
// a mutated session checkpoints it, and the next request restores from the
// snapshot with zero deltas replayed — no full WAL replay.
func TestEvictionSnapshotSkipsFullReplay(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir, MaxSessions: 1})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	writeFact(t, ts.URL, rr.Session, "Y", "Z", 0.7)
	writeFact(t, ts.URL, rr.Session, "Z", "W", 0.8)
	before := sessionRead(t, ts.URL, rr.Session)

	// Evict: MaxSessions=1, so opening another session pushes ours out and
	// the eviction hook checkpoints it. The checkpoint runs on the
	// background retirement queue; requests naming the session wait on the
	// retirement barrier, but this test reads the file directly, so it
	// drains the queue first.
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil)
	s.drainRetirements()
	h, err := snapshot.ReadHeader(filepath.Join(dir, rr.Session+".snap"))
	if err != nil {
		t.Fatalf("eviction wrote no snapshot: %v", err)
	}
	if h.Epoch != before.Epoch {
		t.Errorf("eviction snapshot at epoch %d, session was at %d", h.Epoch, before.Epoch)
	}

	after := sessionRead(t, ts.URL, rr.Session)
	if after.Epoch != before.Epoch || strings.Join(after.Answers, "\n") != strings.Join(before.Answers, "\n") {
		t.Errorf("restored state differs:\nbefore %+v\nafter  %+v", before, after)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.SnapshotRestores != 1 {
		t.Errorf("snapshot restores = %d, want 1", st.WritePath.SnapshotRestores)
	}
	if st.WritePath.TailReplays != 0 {
		t.Errorf("tail replays = %d, want 0 (snapshot covers every commit)", st.WritePath.TailReplays)
	}
}

// TestCorruptSnapshotFallsBackToFullReplay: a bit-flipped snapshot is
// rejected by its checksum and the session restores by full WAL replay —
// slower, never wrong.
func TestCorruptSnapshotFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	writeFact(t, ts.URL, rr.Session, "Y", "Z", 0.7)
	before := sessionRead(t, ts.URL, rr.Session)

	// Retire through the eviction hook so a snapshot lands, then corrupt it.
	sess, _ := s.sessions.Get(rr.Session)
	s.retire(sess)
	s.sessions.Remove(rr.Session)
	snapPath := filepath.Join(dir, rr.Session+".snap")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot missing after retire: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	after := sessionRead(t, ts.URL, rr.Session)
	if after.Epoch != before.Epoch || strings.Join(after.Answers, "\n") != strings.Join(before.Answers, "\n") {
		t.Errorf("fallback restore differs:\nbefore %+v\nafter  %+v", before, after)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.SnapshotRestores != 0 {
		t.Errorf("corrupt snapshot was used: snapshotRestores = %d", st.WritePath.SnapshotRestores)
	}
	if st.WritePath.Restores == 0 {
		t.Error("no restore recorded")
	}
}

// TestSnapshotHandoffAcrossServers: SnapshotAll on one server instance,
// then a second instance over the same directory restores the session from
// the snapshot — the drain half of a rolling worker restart.
func TestSnapshotHandoffAcrossServers(t *testing.T) {
	dir := t.TempDir()
	tsA, sA := newTestServerFull(t, Options{WALDir: dir})
	var rr reasonResponse
	postJSON(t, tsA.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	writeFact(t, tsA.URL, rr.Session, "Y", "Z", 0.7)
	before := sessionRead(t, tsA.URL, rr.Session)
	if n := sA.SnapshotAll(); n != 1 {
		t.Fatalf("SnapshotAll wrote %d snapshots, want 1", n)
	}
	if sA.session(rr.Session) != nil {
		t.Fatal("session still live after drain")
	}

	tsB, _ := newTestServerFull(t, Options{WALDir: dir})
	after := sessionRead(t, tsB.URL, rr.Session)
	if after.Epoch != before.Epoch || strings.Join(after.Answers, "\n") != strings.Join(before.Answers, "\n") {
		t.Errorf("handoff state differs:\nbefore %+v\nafter  %+v", before, after)
	}
	// And the handed-off session keeps committing where A left off.
	fr := writeFact(t, tsB.URL, rr.Session, "Z", "W", 0.8)
	if fr.Epoch != before.Epoch+1 {
		t.Errorf("epoch after handoff write = %d, want %d", fr.Epoch, before.Epoch+1)
	}
}

func TestAssignedSessionIDs(t *testing.T) {
	ts, _ := newTestServerFull(t, Options{WALDir: t.TempDir()})
	var rr reasonResponse
	resp := postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).","assignId":"gw-00042"}`, &rr)
	if resp.StatusCode != http.StatusOK || rr.Session != "gw-00042" {
		t.Fatalf("assigned create: status %d, session %q", resp.StatusCode, rr.Session)
	}
	// The assigned session serves reads and writes like any other.
	writeFact(t, ts.URL, "gw-00042", "Y", "Z", 0.7)
	if got := sessionRead(t, ts.URL, "gw-00042"); got.Epoch != 1 {
		t.Errorf("assigned session epoch = %d, want 1", got.Epoch)
	}
	// Reusing a taken id conflicts.
	if resp := postJSON(t, ts.URL+"/reason", `{"app":"company-control","assignId":"gw-00042"}`, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate assignId: status = %d, want 409", resp.StatusCode)
	}
	for _, bad := range []string{"s7", "s123", "has space", "semi;colon", strings.Repeat("x", 65), "ünicode"} {
		body := fmt.Sprintf(`{"app":"company-control","assignId":%q}`, bad)
		if resp := postJSON(t, ts.URL+"/reason", body, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("assignId %q: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}
