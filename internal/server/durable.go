package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// This file is the durable half of the write path: per-session WAL wiring
// (log-before-apply hooks for the group committer) and transparent session
// restore — an evicted or crash-lost session with a WAL on disk is rebuilt
// to byte-identical state the next time /facts, /explain or a session-read
// /reason names it, instead of answering 404.

// programFingerprint identifies a compiled program in WAL headers: replay
// refuses to resurrect a session against different rules.
func programFingerprint(p *ast.Program) string {
	sum := sha256.Sum256([]byte(p.String()))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// walPath is the session's log file; session ids are never reused within a
// WAL directory (nextID starts past every id found on disk).
func (s *Server) walPath(id string) string {
	return filepath.Join(s.walDir, id+".wal")
}

// scanWALDir returns the highest session number among s<N>.wal files, so a
// restarted process never reissues an id that still has state on disk.
func scanWALDir(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "s") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "s"), ".wal"))
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// newSession builds a live session around a group committer wired to this
// server: lazy maintainer stand-up, log-before-apply, abort records, and
// publication of each applied batch to the session's read state. With a
// WAL directory configured the session's log is created eagerly — header
// first, durable before the session id is handed out — so read-only
// sessions survive eviction and restarts too (restore re-chases their
// logged base), not just mutated ones.
func (s *Server) newSession(id, app string, extra []ast.Atom, res *chase.Result) (*session, error) {
	sess := &session{id: id, app: app, extra: extra, result: res, syncWAL: s.logSync}
	if s.walDir != "" {
		l, err := wal.Create(s.walPath(id), wal.Header{
			App:     app,
			Program: s.fingerprints[app],
			Base:    extra,
		}, s.walSync)
		if err != nil {
			// Durability was promised (a WAL dir is configured) but is
			// unavailable: fail the session rather than silently running
			// volatile.
			return nil, fmt.Errorf("session WAL: %w", err)
		}
		sess.setWAL(l)
	}
	sess.cmt = core.NewCommitter(core.CommitterConfig{
		Queue:        s.writeQueue,
		Window:       s.commitWindow,
		ApplyTimeout: s.timeout,
		ApplyLock:    &sess.renderMu,
		Standup:      s.standup(sess),
		OnLog:        sess.onLog,
		OnAbort:      sess.onAbort,
		OnApply:      s.onApply(sess),
	})
	return sess, nil
}

// standup returns the committer's lazy maintainer factory for a fresh
// session: one full chase over the session's opening facts on the first
// write.
func (s *Server) standup(sess *session) func(context.Context) (*incremental.Maintainer, error) {
	return func(ctx context.Context) (*incremental.Maintainer, error) {
		return s.pipe(sess.app).MaintainContext(ctx, sess.extra...)
	}
}

// logSync flushes one session log after a commit. Under the group policy
// the fsync goes through the server's cross-session SyncBatcher, so commit
// windows that close together across concurrent sessions share flush rounds
// instead of each paying a serialized fsync; otherwise (or when batching is
// off) it is a direct Log.Sync.
func (s *Server) logSync(l *wal.Log) error {
	if s.syncBatcher != nil {
		return s.syncBatcher.Sync(l)
	}
	return l.Sync()
}

// onLog appends the merged batch delta and makes it durable per policy —
// one record and (under the group policy) at most one fsync per commit,
// shared across sessions by the server's SyncBatcher, regardless of how
// many writes coalesced into it.
func (sess *session) onLog(seq uint64, add, retract []ast.Atom) error {
	l := sess.getWAL()
	if l == nil {
		return nil
	}
	if err := l.Append(wal.Delta{Seq: seq, Add: add, Retract: retract}); err != nil {
		return err
	}
	return sess.syncWAL(l)
}

// onAbort marks a logged-but-failed batch so replay skips it. Best effort:
// if the abort record cannot be written, restore-time replay discovers the
// failure by re-running the delta and skipping it when it fails again.
func (sess *session) onAbort(seq uint64) {
	l := sess.getWAL()
	if l == nil {
		return
	}
	_ = l.AppendAbort(seq)
	_ = sess.syncWAL(l)
}

// onApply publishes an applied batch: the repaired fixpoint and its commit
// epoch become the session's read state, cached explanations rendered
// against the previous epoch are removed, and the server-wide incremental
// counters advance once per batch. It runs on the session's commit leader,
// which is also where compaction triggers: the leader is quiescent between
// batches, so the checkpoint it writes is exactly the state at seq.
func (s *Server) onApply(sess *session) func(uint64, *chase.Result, incremental.UpdateStats) int {
	return func(seq uint64, res *chase.Result, stats incremental.UpdateStats) int {
		if s.testHookApply != nil {
			s.testHookApply()
		}
		sess.stateMu.Lock()
		sess.result = res
		sess.epoch = seq
		stale := sess.explKeys
		sess.explKeys = nil
		sess.stateMu.Unlock()
		invalidated := 0
		for _, key := range stale {
			if s.explanations.Remove(key) {
				invalidated++
			}
		}
		s.updates.Add(1)
		s.deltaRounds.Add(uint64(stats.DeltaRounds))
		s.overDeleted.Add(uint64(stats.OverDeleted))
		s.rederived.Add(uint64(stats.Rederived))
		s.invalidations.Add(uint64(invalidated))
		if s.walDir != "" {
			sess.deltasSinceSnap++
			if s.shouldCompact(sess) {
				if err := s.compact(sess, seq); err != nil {
					s.logf("server: compacting session %s: %v", sess.id, err)
				}
			}
		}
		return invalidated
	}
}

// restoreFlight is one in-progress restore in the per-session singleflight
// table: the leader publishes sess/err and closes done; followers wait on
// done instead of replaying the same session twice.
type restoreFlight struct {
	done chan struct{}
	sess *session
	err  error
}

// restore rebuilds an evicted (or crash-lost) session from its durable
// state. Restores of distinct sessions run in parallel — the snapshot+tail
// rebuild is session-local — while concurrent requests naming one session
// share a single restore through the per-session singleflight table (only
// the table itself and the session-store insert are coordinated). Returns
// (nil, nil) when the session has no durable state at all — the caller
// answers 404 exactly as before.
func (s *Server) restore(ctx context.Context, id string) (*session, error) {
	if s.walDir == "" {
		return nil, nil
	}
	for {
		s.restoreMu.Lock()
		if sess := s.session(id); sess != nil {
			s.restoreMu.Unlock()
			return sess, nil // raced with another restorer: done
		}
		if f, ok := s.restoring[id]; ok {
			s.restoreMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, chase.ContextErr(ctx)
			}
			if f.err != nil && chase.IsCancellation(f.err) && ctx.Err() == nil {
				// The leader died of its own request's cancellation, not of
				// bad durable state; this request is still live, so take
				// over the restore.
				continue
			}
			return f.sess, f.err
		}
		f := &restoreFlight{done: make(chan struct{})}
		s.restoring[id] = f
		s.restoreMu.Unlock()

		f.sess, f.err = s.restoreSession(ctx, id)
		if f.err == nil && f.sess != nil {
			// Publish to the session table before retiring the flight, so a
			// request arriving in between finds either the flight or the
			// live session — never a gap that would start a second restore.
			s.sessions.Put(id, f.sess)
		}
		s.restoreMu.Lock()
		delete(s.restoring, id)
		s.restoreMu.Unlock()
		close(f.done)
		return f.sess, f.err
	}
}

// restoreSession is one session's actual rebuild; it runs outside every
// server-wide lock (the singleflight table guarantees it runs at most once
// per session at a time). It prefers the session's snapshot: deserialize
// the engine (byte-identical to the checkpointed state) and replay only
// the short WAL tail past the snapshot epoch. Without a usable snapshot it
// falls back to a full WAL replay — header base plus every committed delta
// — unless the log was compacted (StartSeq > 0), in which case the prefix
// is gone and the restore fails loudly instead of rebuilding partial
// state. A pending background retirement of the same session is waited out
// first: the retirer is still producing the very files this restore reads.
func (s *Server) restoreSession(ctx context.Context, id string) (*session, error) {
	if err := s.waitRetirement(ctx, id); err != nil {
		return nil, err
	}
	if s.testHookRestore != nil {
		s.testHookRestore(id)
	}
	start := time.Now()
	snapHdr, payload, snapErr := snapshot.Read(s.snapPath(id))
	if snapErr == nil {
		sess, err := s.restoreFromSnapshot(ctx, id, snapHdr, payload)
		if err != nil {
			return nil, fmt.Errorf("restoring session %s: %w", id, err)
		}
		s.restores.Add(1)
		s.snapshotRestores.Add(1)
		d := time.Since(start)
		s.restoreNanos.Add(uint64(d))
		s.restoreHist.observe(d)
		return sess, nil
	}
	if !os.IsNotExist(snapErr) {
		s.logf("server: session %s: snapshot unusable (%v); falling back to full WAL replay", id, snapErr)
	}
	rec, err := wal.Replay(s.walPath(id))
	if os.IsNotExist(err) {
		if !os.IsNotExist(snapErr) {
			return nil, fmt.Errorf("restoring session %s: snapshot unusable (%v) and no WAL", id, snapErr)
		}
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", id, err)
	}
	if rec.Header.StartSeq > 0 {
		return nil, fmt.Errorf("restoring session %s: WAL is a tail starting at epoch %d and the snapshot it depends on is unusable (%v)",
			id, rec.Header.StartSeq, snapErr)
	}
	pipe := s.pipe(rec.Header.App)
	if pipe == nil {
		return nil, fmt.Errorf("restoring session %s: unknown application %q", id, rec.Header.App)
	}
	if got, want := rec.Header.Program, s.fingerprints[rec.Header.App]; got != want {
		return nil, fmt.Errorf("restoring session %s: program fingerprint changed (log %s, compiled %s)", id, got, want)
	}
	deltas := rec.Live()
	m, bad, err := s.replay(ctx, pipe, rec.Header.Base, deltas)
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", id, err)
	}
	log, err := rec.OpenAppend(s.walSync)
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", id, err)
	}
	// A delta that failed during replay was the poisoning write of the
	// previous life, crashed before its abort record landed; mark it now so
	// the next replay skips it outright.
	if bad != 0 {
		_ = log.AppendAbort(bad)
		_ = log.Sync()
	}
	res, err := m.Result()
	if err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("restoring session %s: %w", id, err)
	}
	sess := &session{id: id, app: rec.Header.App, extra: rec.Header.Base, result: res, epoch: rec.LastSeq(), syncWAL: s.logSync}
	sess.setWAL(log)
	sess.cmt = core.NewCommitter(core.CommitterConfig{
		Queue:        s.writeQueue,
		Window:       s.commitWindow,
		ApplyTimeout: s.timeout,
		StartSeq:     rec.LastSeq(),
		Maintainer:   m,
		ApplyLock:    &sess.renderMu,
		OnLog:        sess.onLog,
		OnAbort:      sess.onAbort,
		OnApply:      s.onApply(sess),
	})
	s.restores.Add(1)
	d := time.Since(start)
	s.restoreNanos.Add(uint64(d))
	s.restoreHist.observe(d)
	return sess, nil
}

// replay rebuilds a maintainer by applying the committed deltas in order.
// The incremental engine is deterministic, so the rebuilt instance is
// byte-identical — same atoms, same fact ids, same proofs — to the state
// the session had after its last acknowledged commit. A delta that fails
// mid-replay can only be the final one (its failure poisoned or crashed the
// previous life, and nothing committed after it); the maintainer is rebuilt
// once more without it and its seq is reported for an abort record.
func (s *Server) replay(ctx context.Context, pipe *core.Pipeline, base []ast.Atom, deltas []wal.Delta) (*incremental.Maintainer, uint64, error) {
	m, err := pipe.MaintainContext(ctx, base...)
	if err != nil {
		return nil, 0, err
	}
	for i, d := range deltas {
		if _, _, err := m.UpdateContext(ctx, d.Add, d.Retract); err != nil {
			if i != len(deltas)-1 {
				return nil, 0, fmt.Errorf("replay: delta %d/%d failed before the tail: %w", i+1, len(deltas), err)
			}
			m, err2 := s.replayClean(ctx, pipe, base, deltas[:i])
			if err2 != nil {
				return nil, 0, err2
			}
			return m, d.Seq, nil
		}
	}
	return m, 0, nil
}

// replayClean rebuilds a maintainer over deltas known to apply cleanly.
func (s *Server) replayClean(ctx context.Context, pipe *core.Pipeline, base []ast.Atom, deltas []wal.Delta) (*incremental.Maintainer, error) {
	m, err := pipe.MaintainContext(ctx, base...)
	if err != nil {
		return nil, err
	}
	for _, d := range deltas {
		if _, _, err := m.UpdateContext(ctx, d.Add, d.Retract); err != nil {
			return nil, fmt.Errorf("replay: delta failed on clean rebuild: %w", err)
		}
	}
	return m, nil
}
