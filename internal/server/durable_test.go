package server

// Durability tests: transparent WAL restore of evicted sessions, async
// writes with epoch tokens on the read endpoints, and the kill-and-restart
// matrix — a subprocess hammered by concurrent writers is SIGKILLed
// mid-burst and a fresh server over the same WAL directory must restore
// every acknowledged write, byte-identical to the sequential oracle.

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/incremental"
	"repro/internal/term"
	"repro/internal/wal"
)

func TestSessionRestoreAfterEviction(t *testing.T) {
	dir := t.TempDir()
	ts, s := newTestServerFull(t, Options{WALDir: dir, MaxSessions: 1})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	var fr factsResponse
	if resp := postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"Own(\"Y\",\"Z\",0.7)."}`, &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("facts status = %d", resp.StatusCode)
	}
	var before reasonResponse
	postJSON(t, ts.URL+"/reason", `{"session":"`+rr.Session+`"}`, &before)

	evict := func() {
		t.Helper()
		if resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("evicting session open failed")
		}
		if s.session(rr.Session) != nil {
			t.Fatal("session survived eviction")
		}
	}

	// /explain against the evicted session restores it transparently.
	evict()
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Z%22)`); code != http.StatusOK {
		t.Fatalf("explain after eviction: status = %d, want 200 via restore", code)
	}
	var after reasonResponse
	postJSON(t, ts.URL+"/reason", `{"session":"`+rr.Session+`"}`, &after)
	if after.Epoch != before.Epoch || after.Facts != before.Facts ||
		strings.Join(after.Answers, "\n") != strings.Join(before.Answers, "\n") {
		t.Errorf("restored state differs:\nbefore %+v\nafter  %+v", before, after)
	}

	// /facts against the evicted session restores it and keeps committing
	// where the first life left off.
	evict()
	if resp := postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"Own(\"Z\",\"W\",0.8)."}`, &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("facts after eviction: status = %d, want 200 via restore", resp.StatusCode)
	}
	if fr.Epoch != before.Epoch+1 {
		t.Errorf("epoch after restore+write = %d, want %d", fr.Epoch, before.Epoch+1)
	}
	found := false
	for _, a := range fr.Answers {
		if a == "Control(X, W)" {
			found = true
		}
	}
	if !found {
		t.Errorf("write after restore lost the chain: %v", fr.Answers)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Restores < 2 {
		t.Errorf("/stats restores = %d, want >= 2", st.WritePath.Restores)
	}
	if st.WritePath.WAL.Appends == 0 || st.WritePath.WAL.Replays == 0 {
		t.Errorf("/stats WAL counters = %+v", st.WritePath.WAL)
	}
}

// TestReadOnlySessionRestored pins the eager-WAL boundary: a session's log
// (header with the opening base facts) is created when the session opens,
// not on its first write, so even a session that never committed anything
// survives eviction — its restore re-chases the logged base. (Before the
// serving tier this answered 404; routed deployments made every session's
// durability non-negotiable.)
func TestReadOnlySessionRestored(t *testing.T) {
	ts, _ := newTestServerFull(t, Options{WALDir: t.TempDir(), MaxSessions: 1})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evicts
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Y%22)`); code != http.StatusOK {
		t.Errorf("read-only evicted session: status = %d, want 200 via restore", code)
	}
	// Without a WAL directory the pre-durability behavior stands: 404.
	tsVol, _ := newTestServerFull(t, Options{MaxSessions: 1})
	postJSON(t, tsVol.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	postJSON(t, tsVol.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evicts
	if _, code := getBody(t, tsVol.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Y%22)`); code != http.StatusNotFound {
		t.Errorf("volatile evicted session: status = %d, want 404", code)
	}
}

func TestAsyncWriteAndEpochReads(t *testing.T) {
	ts, _ := newTestServerFull(t, Options{WALDir: t.TempDir()})
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)

	var ar asyncFactsResponse
	resp := postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"Own(\"Y\",\"Z\",0.7).","async":true}`, &ar)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async write: status = %d, want 202", resp.StatusCode)
	}
	if ar.Epoch == 0 {
		t.Fatalf("async write carried no epoch: %+v", ar)
	}

	// A session read at the returned epoch observes the write.
	var sr reasonResponse
	resp = postJSON(t, ts.URL+"/reason",
		fmt.Sprintf(`{"session":%q,"epoch":%d}`, rr.Session, ar.Epoch), &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session read at epoch: status = %d", resp.StatusCode)
	}
	if sr.Epoch < ar.Epoch {
		t.Errorf("session read epoch = %d, want >= %d", sr.Epoch, ar.Epoch)
	}
	found := false
	for _, a := range sr.Answers {
		if a == "Control(X, Z)" {
			found = true
		}
	}
	if !found {
		t.Errorf("epoch read does not observe the async write: %v", sr.Answers)
	}

	// /explain honors ?epoch= the same way.
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+
		fmt.Sprintf(`&query=Control(%%22X%%22,%%22Z%%22)&epoch=%d`, ar.Epoch)); code != http.StatusOK {
		t.Errorf("explain at epoch: status = %d", code)
	}

	// Epochs that were never issued answer 409, on both read endpoints.
	if _, code := postBody(t, ts.URL+"/reason",
		fmt.Sprintf(`{"session":%q,"epoch":%d}`, rr.Session, ar.Epoch+100)); code != http.StatusConflict {
		t.Errorf("unissued epoch on /reason: status = %d, want 409", code)
	}
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+
		fmt.Sprintf(`&query=Control(%%22X%%22,%%22Z%%22)&epoch=%d`, ar.Epoch+100)); code != http.StatusConflict {
		t.Errorf("unissued epoch on /explain: status = %d, want 409", code)
	}

	// An epoch without a session to wait on is a request error.
	if _, code := postBody(t, ts.URL+"/reason", `{"app":"company-control","epoch":1}`); code != http.StatusBadRequest {
		t.Errorf("epoch without session: status = %d, want 400", code)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Commit.Async == 0 {
		t.Errorf("/stats commit counters = %+v", st.WritePath.Commit)
	}
}

// storeDump renders a maintainer's entire fact store — every fact id, atom,
// extensional flag and tombstone — so two stores can be compared for byte
// identity, not just answer-set equality.
func storeDump(t testing.TB, m *incremental.Maintainer) string {
	t.Helper()
	res, err := m.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var b strings.Builder
	st := res.Store
	for id := database.FactID(0); int(id) < st.Len(); id++ {
		f := st.Get(id)
		fmt.Fprintf(&b, "%d %s ext=%v dead=%v\n", id, f.Atom.String(), f.Extensional, st.Retracted(id))
	}
	return b.String()
}

// TestKillAndRestartRecovery is the crash-recovery acceptance test: a child
// process serving a session under a concurrent write burst is SIGKILLed
// mid-burst; a fresh server over the same WAL directory must restore the
// session with every acknowledged write present and a fact store
// byte-identical to replaying the log's committed deltas sequentially.
func TestKillAndRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALCrashWorker$")
	cmd.Env = append(os.Environ(), "WAL_CRASH_WORKER=1", "WAL_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Collect the session id and acknowledged writes until the burst is
	// well underway, then SIGKILL mid-flight.
	type ack struct{ w, j int }
	var (
		session string
		acks    []ack
	)
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "session "):
			session = strings.TrimPrefix(line, "session ")
		case strings.HasPrefix(line, "acked "):
			var a ack
			if _, err := fmt.Sscanf(line, "acked %d %d", &a.w, &a.j); err == nil {
				acks = append(acks, a)
			}
		}
		if session != "" && len(acks) >= 32 {
			break
		}
	}
	if session == "" {
		t.Fatalf("worker never reported a session (scan err %v)", scanner.Err())
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// Acks already in the pipe when the kill landed are acknowledged writes
	// too: their clients saw 200 before the crash.
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "acked ") {
			var a ack
			if _, err := fmt.Sscanf(line, "acked %d %d", &a.w, &a.j); err == nil {
				acks = append(acks, a)
			}
		}
	}
	_ = cmd.Wait()

	// A fresh server over the same WAL directory restores the session on
	// first touch.
	s2, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var rr reasonResponse
	resp := postJSON(t, ts2.URL+"/reason", `{"session":"`+session+`"}`, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session read after restart: status = %d", resp.StatusCode)
	}
	sess := s2.session(session)
	if sess == nil {
		t.Fatal("session not in table after restore")
	}
	m := sess.cmt.Maintainer()
	if m == nil {
		t.Fatal("restored session has no maintainer")
	}

	// Every acknowledged write is present as a base fact.
	for _, a := range acks {
		atom := ast.NewAtom("Own",
			term.Str(fmt.Sprintf("w%d", a.w)), term.Str(fmt.Sprintf("n%d", a.j)), term.Float(0.9))
		if present, base := m.Resolve(atom); !present || !base {
			t.Errorf("acknowledged write %v lost in the crash (present=%v base=%v)", atom, present, base)
		}
	}

	// The restored store is byte-identical to the sequential oracle: the
	// log's committed deltas applied one by one in commit order.
	rec, err := wal.Replay(filepath.Join(dir, session+".wal"))
	if err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	oracle, err := s2.pipe(rec.Header.App).MaintainContext(ctx, rec.Header.Base...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rec.Live() {
		if _, _, err := oracle.UpdateContext(ctx, d.Add, d.Retract); err != nil {
			t.Fatalf("oracle delta %d: %v", d.Seq, err)
		}
	}
	if got, want := storeDump(t, m), storeDump(t, oracle); got != want {
		t.Errorf("restored store differs from sequential oracle:\n--- restored ---\n%s--- oracle ---\n%s", got, want)
	}
	if rr.Epoch != rec.LastSeq() {
		t.Errorf("restored epoch = %d, want last logged seq %d", rr.Epoch, rec.LastSeq())
	}
}

// TestWALCrashWorker is the subprocess body of TestKillAndRestartRecovery:
// it opens a durable session, hammers it with concurrent writers, reports
// every acknowledged write on stdout, and runs until it is killed.
func TestWALCrashWorker(t *testing.T) {
	if os.Getenv("WAL_CRASH_WORKER") == "" {
		t.Skip("subprocess helper, driven by TestKillAndRestartRecovery")
	}
	dir := os.Getenv("WAL_CRASH_DIR")
	s, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ts := httptest.NewServer(s.Handler())
	var rr reasonResponse
	if resp := postJSON(t, ts.URL+"/reason",
		`{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr); resp.StatusCode != http.StatusOK {
		fmt.Fprintln(os.Stderr, "open session failed:", resp.StatusCode)
		os.Exit(1)
	}
	fmt.Printf("session %s\n", rr.Session)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for j := 0; ; j++ {
				body := fmt.Sprintf(`{"session":%q,"add":"Own(\"w%d\",\"n%d\",0.9)."}`, rr.Session, w, j)
				resp, err := http.Post(ts.URL+"/facts", "application/json", strings.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					fmt.Printf("acked %d %d\n", w, j)
				}
			}
		}(w)
	}
	select {} // run until SIGKILLed
}
