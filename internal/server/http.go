package server

// HTTP transport construction. A bare http.ListenAndServe has no timeouts
// at all: a client that sends its request headers one byte a minute (the
// classic slowloris attack), or never reads its response, holds a goroutine
// and a file descriptor forever. NewHTTPServer builds the http.Server every
// binary should serve this handler from, with each timeout set.

import (
	"net/http"
	"time"
)

// HTTPTimeouts are the transport-level timeouts of a serving socket.
// They bound the connection, not the request — the per-request reasoning
// deadline is Options.RequestTimeout, and WriteTimeout must exceed it or
// responses of slow-but-legal requests are cut off mid-body.
type HTTPTimeouts struct {
	// ReadHeader is the slowloris bound: how long a client may take to
	// finish sending its request headers.
	ReadHeader time.Duration
	// Read bounds reading the entire request, body included.
	Read time.Duration
	// Write bounds writing the entire response, measured from the end of
	// the request headers.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests.
	Idle time.Duration
}

// DefaultHTTPTimeouts returns the transport defaults: headers within 5s,
// request bodies within 30s, responses within 60s (comfortably above the
// 30s default reasoning deadline), idle keep-alives reaped after 2min.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       30 * time.Second,
		Write:      60 * time.Second,
		Idle:       2 * time.Minute,
	}
}

// NewHTTPServer builds the configured http.Server for a handler. Zero
// fields of t fall back to DefaultHTTPTimeouts; a negative field disables
// that timeout (standard library semantics).
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	d := DefaultHTTPTimeouts()
	if t.ReadHeader == 0 {
		t.ReadHeader = d.ReadHeader
	}
	if t.Read == 0 {
		t.Read = d.Read
	}
	if t.Write == 0 {
		t.Write = d.Write
	}
	if t.Idle == 0 {
		t.Idle = d.Idle
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
