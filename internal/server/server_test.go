package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestAppsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out []appInfo
	resp := getJSON(t, ts.URL+"/apps", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out) != 5 {
		t.Fatalf("apps = %d", len(out))
	}
	names := map[string]bool{}
	for _, a := range out {
		names[a.Name] = true
	}
	if !names["company-control"] || !names["stress-test"] {
		t.Errorf("apps = %v", names)
	}
}

func TestReasonAndExplainFlow(t *testing.T) {
	ts := newTestServer(t)

	var rr reasonResponse
	resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reason status = %d", resp.StatusCode)
	}
	if rr.Session == "" || len(rr.Answers) != 3 {
		t.Fatalf("reason response = %+v", rr)
	}

	var er explainResponse
	resp = getJSON(t, ts.URL+`/explain?session=`+rr.Session+`&query=Default(%22C%22)`, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d", resp.StatusCode)
	}
	if er.Fact != "Default(C)" {
		t.Errorf("fact = %q", er.Fact)
	}
	if !er.Complete {
		t.Error("explanation not complete")
	}
	if len(er.ReasoningPaths) != 2 || er.ReasoningPaths[0] != "Π2" || er.ReasoningPaths[1] != "Γ1*" {
		t.Errorf("paths = %v", er.ReasoningPaths)
	}
	if len(er.ProofSteps) != 5 {
		t.Errorf("proof steps = %d", len(er.ProofSteps))
	}
	if !strings.Contains(er.Text, "sum of 2 and 9") {
		t.Errorf("text = %q", er.Text)
	}
}

func TestReasonWithUserFacts(t *testing.T) {
	ts := newTestServer(t)
	var rr reasonResponse
	body := `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).\nOwn(\"Y\",\"Z\",0.7)."}`
	resp := postJSON(t, ts.URL+"/reason", body, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %+v", resp.StatusCode, rr)
	}
	found := false
	for _, a := range rr.Answers {
		if a == `Control(X, Z)` {
			found = true
		}
	}
	if !found {
		t.Errorf("Control(X,Z) not derived: %v", rr.Answers)
	}
}

func TestPathsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out []pathInfo
	resp := getJSON(t, ts.URL+"/paths?app=company-control", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ids := map[string]pathInfo{}
	for _, p := range out {
		ids[p.ID] = p
	}
	if p, ok := ids["Π5*"]; !ok || !p.Dashed || p.Kind != "simple path" {
		t.Errorf("Π5* = %+v", ids["Π5*"])
	}
	if p, ok := ids["Γ1"]; !ok || p.Kind != "cycle" {
		t.Errorf("Γ1 = %+v", ids["Γ1"])
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)

	if resp := postJSON(t, ts.URL+"/reason", `{"app":"bogus"}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown app status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/reason", `not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/explain?session=nope&query=X()", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/paths?app=bogus", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown app paths status = %d", resp.StatusCode)
	}

	// Missing query and unexplainable facts.
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
	if resp := getJSON(t, ts.URL+"/explain?session="+rr.Session, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/explain?session="+rr.Session+`&query=Default(%22Z%22)`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing fact status = %d", resp.StatusCode)
	}
}

func TestSessionsIsolated(t *testing.T) {
	ts := newTestServer(t)
	var r1, r2 reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"P\",\"Q\",0.9)."}`, &r1)
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"R\",\"S\",0.9)."}`, &r2)
	if r1.Session == r2.Session {
		t.Fatal("sessions collide")
	}
	// Session 2 does not know session 1's facts.
	if resp := getJSON(t, ts.URL+"/explain?session="+r2.Session+`&query=Control(%22P%22,%22Q%22)`, nil); resp.StatusCode == http.StatusOK {
		t.Error("session leakage")
	}
}
