package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	return newTestServerOpts(t, Options{})
}

func newTestServerOpts(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	s, err := NewWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getBody fetches a URL and returns the raw response bytes and status.
func getBody(t testing.TB, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestAppsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out []appInfo
	resp := getJSON(t, ts.URL+"/apps", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out) != 5 {
		t.Fatalf("apps = %d", len(out))
	}
	names := map[string]bool{}
	for _, a := range out {
		names[a.Name] = true
	}
	if !names["company-control"] || !names["stress-test"] {
		t.Errorf("apps = %v", names)
	}
}

func TestReasonAndExplainFlow(t *testing.T) {
	ts := newTestServer(t)

	var rr reasonResponse
	resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reason status = %d", resp.StatusCode)
	}
	if rr.Session == "" || len(rr.Answers) != 3 {
		t.Fatalf("reason response = %+v", rr)
	}

	var er explainResponse
	resp = getJSON(t, ts.URL+`/explain?session=`+rr.Session+`&query=Default(%22C%22)`, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d", resp.StatusCode)
	}
	if er.Fact != "Default(C)" {
		t.Errorf("fact = %q", er.Fact)
	}
	if !er.Complete {
		t.Error("explanation not complete")
	}
	if len(er.ReasoningPaths) != 2 || er.ReasoningPaths[0] != "Π2" || er.ReasoningPaths[1] != "Γ1*" {
		t.Errorf("paths = %v", er.ReasoningPaths)
	}
	if len(er.ProofSteps) != 5 {
		t.Errorf("proof steps = %d", len(er.ProofSteps))
	}
	if !strings.Contains(er.Text, "sum of 2 and 9") {
		t.Errorf("text = %q", er.Text)
	}
}

func TestReasonWithUserFacts(t *testing.T) {
	ts := newTestServer(t)
	var rr reasonResponse
	body := `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).\nOwn(\"Y\",\"Z\",0.7)."}`
	resp := postJSON(t, ts.URL+"/reason", body, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %+v", resp.StatusCode, rr)
	}
	found := false
	for _, a := range rr.Answers {
		if a == `Control(X, Z)` {
			found = true
		}
	}
	if !found {
		t.Errorf("Control(X,Z) not derived: %v", rr.Answers)
	}
}

func TestPathsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out []pathInfo
	resp := getJSON(t, ts.URL+"/paths?app=company-control", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ids := map[string]pathInfo{}
	for _, p := range out {
		ids[p.ID] = p
	}
	if p, ok := ids["Π5*"]; !ok || !p.Dashed || p.Kind != "simple path" {
		t.Errorf("Π5* = %+v", ids["Π5*"])
	}
	if p, ok := ids["Γ1"]; !ok || p.Kind != "cycle" {
		t.Errorf("Γ1 = %+v", ids["Γ1"])
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)

	if resp := postJSON(t, ts.URL+"/reason", `{"app":"bogus"}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown app status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/reason", `not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/explain?session=nope&query=X()", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/paths?app=bogus", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown app paths status = %d", resp.StatusCode)
	}

	// Missing query and unexplainable facts.
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
	if resp := getJSON(t, ts.URL+"/explain?session="+rr.Session, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/explain?session="+rr.Session+`&query=Default(%22Z%22)`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing fact status = %d", resp.StatusCode)
	}
}

// TestSessionCapacityEnforced is the regression test for the formerly
// unbounded session map: at capacity the least recently used session is
// evicted and stops answering.
func TestSessionCapacityEnforced(t *testing.T) {
	ts := newTestServerOpts(t, Options{MaxSessions: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		var rr reasonResponse
		resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reason %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, rr.Session)
	}
	for i, id := range ids {
		_, code := getBody(t, ts.URL+"/explain?session="+id+`&query=Default(%22C%22)`)
		wantCode := http.StatusOK
		if i < 2 { // the two oldest sessions were evicted
			wantCode = http.StatusNotFound
		}
		if code != wantCode {
			t.Errorf("session %d (%s): status = %d, want %d", i, id, code, wantCode)
		}
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Sessions.Len != 3 || st.Sessions.Cap != 3 || st.Sessions.Evictions != 2 {
		t.Errorf("session stats = %+v", st.Sessions)
	}
}

// TestExplainCacheByteIdentical: repeating one explanation query serves the
// memoized rendering, and the cached response is byte-for-byte the uncached
// one.
func TestExplainCacheByteIdentical(t *testing.T) {
	ts := newTestServer(t)
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &rr)
	url := ts.URL + "/explain?session=" + rr.Session + `&query=Default(%22C%22)`
	cold, code := getBody(t, url)
	if code != http.StatusOK {
		t.Fatalf("cold status = %d", code)
	}
	warm, code := getBody(t, url)
	if code != http.StatusOK {
		t.Fatalf("warm status = %d", code)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cached response differs:\ncold: %s\nwarm: %s", cold, warm)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Explanations.Hits == 0 || st.Explanations.Len == 0 {
		t.Errorf("explanation cache stats = %+v", st.Explanations)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","scenario":true}`, &rr)
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","scenario":true}`, &rr)
	var st statsResponse
	resp := getJSON(t, ts.URL+"/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Sessions.Cap != DefaultMaxSessions || st.Sessions.Len != 2 {
		t.Errorf("sessions = %+v", st.Sessions)
	}
	if len(st.Apps) != 5 {
		t.Fatalf("apps tracked = %d", len(st.Apps))
	}
	cc := st.Apps["company-control"]
	if cc.Results.Cap != DefaultResultCacheSize {
		t.Errorf("result cache cap = %d", cc.Results.Cap)
	}
	// The second identical /reason was served from the result cache.
	if cc.Results.Hits == 0 {
		t.Errorf("result cache stats = %+v", cc.Results)
	}
}

// TestConcurrentServing hammers one server with parallel /reason and
// /explain requests (run under -race): identical payloads must produce
// responses byte-identical to a fresh, cache-cold server's, whether they
// were served from a cache or computed.
func TestConcurrentServing(t *testing.T) {
	// Reference bytes from a cache-cold server: the first rendering of
	// the explanation, and the answer set of the reasoning request.
	ref := newTestServer(t)
	var refReason reasonResponse
	postJSON(t, ref.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &refReason)
	refBody, code := getBody(t, ref.URL+"/explain?session="+refReason.Session+`&query=Default(%22C%22)`)
	if code != http.StatusOK {
		t.Fatalf("reference explain status = %d", code)
	}

	ts := newTestServer(t)
	var shared reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, &shared)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// A fresh session per iteration: the explanation cache
				// misses, the result cache hits after the first run.
				resp, err := http.Post(ts.URL+"/reason", "application/json",
					strings.NewReader(`{"app":"stress-simple","scenario":true}`))
				if err != nil {
					errs <- err.Error()
					return
				}
				var rr reasonResponse
				if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
					resp.Body.Close()
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if fmt.Sprint(rr.Answers) != fmt.Sprint(refReason.Answers) {
					errs <- fmt.Sprintf("answers %v != %v", rr.Answers, refReason.Answers)
					return
				}
				for _, sess := range []string{rr.Session, shared.Session} {
					body, code := getBody(t, ts.URL+"/explain?session="+sess+`&query=Default(%22C%22)`)
					if code != http.StatusOK {
						errs <- fmt.Sprintf("explain status %d", code)
						return
					}
					if !bytes.Equal(body, refBody) {
						errs <- fmt.Sprintf("explain body differs from cold reference:\n%s\nvs\n%s", body, refBody)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	ss := st.Apps["stress-simple"]
	if ss.Results.Hits == 0 {
		t.Errorf("no shared reasoning runs under load: %+v", ss)
	}
	if st.Explanations.Hits == 0 {
		t.Errorf("no explanation cache hits under load: %+v", st.Explanations)
	}
}

func TestSessionsIsolated(t *testing.T) {
	ts := newTestServer(t)
	var r1, r2 reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"P\",\"Q\",0.9)."}`, &r1)
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"R\",\"S\",0.9)."}`, &r2)
	if r1.Session == r2.Session {
		t.Fatal("sessions collide")
	}
	// Session 2 does not know session 1's facts.
	if resp := getJSON(t, ts.URL+"/explain?session="+r2.Session+`&query=Control(%22P%22,%22Q%22)`, nil); resp.StatusCode == http.StatusOK {
		t.Error("session leakage")
	}
}

// TestFactsMutationFlow drives a session through retract and re-add cycles:
// answers must track the mutations, explanations rendered against a stale
// fixpoint must disappear, and the session must keep explaining correctly.
func TestFactsMutationFlow(t *testing.T) {
	ts := newTestServer(t)
	var rr reasonResponse
	body := `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).\nOwn(\"Y\",\"Z\",0.7)."}`
	postJSON(t, ts.URL+"/reason", body, &rr)
	if rr.Session == "" {
		t.Fatalf("reason response = %+v", rr)
	}
	explainURL := ts.URL + "/explain?session=" + rr.Session + `&query=Control(%22X%22,%22Z%22)`
	if _, code := getBody(t, explainURL); code != http.StatusOK {
		t.Fatalf("pre-mutation explain status = %d", code)
	}

	var fr factsResponse
	resp := postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","retract":"Own(\"Y\",\"Z\",0.7)."}`, &fr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts status = %d: %+v", resp.StatusCode, fr)
	}
	if fr.Epoch == 0 || fr.Stats.Retracted != 1 || fr.Stats.OverDeleted == 0 {
		t.Errorf("facts response = %+v", fr)
	}
	if fr.InvalidatedExplanations == 0 {
		t.Error("mutation removed no cached explanations")
	}
	for _, a := range fr.Answers {
		if a == "Control(X, Z)" {
			t.Error("Control(X, Z) survived retracting its support")
		}
	}
	// The stale explanation is gone; the surviving fact still explains.
	if _, code := getBody(t, explainURL); code != http.StatusUnprocessableEntity {
		t.Fatalf("post-mutation explain status = %d, want 422", code)
	}
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Y%22)`); code != http.StatusOK {
		t.Errorf("surviving fact explain status = %d", code)
	}

	// Re-adding restores the chain and its explanation.
	resp = postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","add":"Own(\"Y\",\"Z\",0.7)."}`, &fr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-add status = %d", resp.StatusCode)
	}
	found := false
	for _, a := range fr.Answers {
		if a == "Control(X, Z)" {
			found = true
		}
	}
	if !found {
		t.Errorf("Control(X, Z) not restored: %v", fr.Answers)
	}
	if _, code := getBody(t, explainURL); code != http.StatusOK {
		t.Errorf("restored explain status = %d", code)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Incremental.Updates != 2 || st.Incremental.Invalidations == 0 || st.Incremental.OverDeleted == 0 {
		t.Errorf("incremental stats = %+v", st.Incremental)
	}
}

func TestFactsErrors(t *testing.T) {
	ts := newTestServer(t)
	if resp := postJSON(t, ts.URL+"/facts", `{"session":"nope","add":"A(\"x\")."}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/facts", `not json`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	var rr reasonResponse
	postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
	if resp := postJSON(t, ts.URL+"/facts", `{"session":"`+rr.Session+`","add":"not facts"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fact syntax status = %d", resp.StatusCode)
	}
	// Retracting a derived fact is rejected without changing the session.
	if resp := postJSON(t, ts.URL+"/facts",
		`{"session":"`+rr.Session+`","retract":"Control(\"X\",\"Y\")."}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("retract derived status = %d", resp.StatusCode)
	}
	if _, code := getBody(t, ts.URL+"/explain?session="+rr.Session+`&query=Control(%22X%22,%22Y%22)`); code != http.StatusOK {
		t.Errorf("session unusable after rejected mutation: status = %d", code)
	}
}

// TestConcurrentMutation hammers sessions with parallel /facts and /explain
// requests (meaningful under -race): per-session mutations are serialized,
// reads see a consistent (fixpoint, epoch) pair, and no request may fail
// with anything but the expected not-derived 422 while the chain is down.
func TestConcurrentMutation(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var rr reasonResponse
			postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6).\nOwn(\"Y\",\"Z\",0.7)."}`, &rr)
			mut := ts.URL + "/facts"
			explain := ts.URL + "/explain?session=" + rr.Session + `&query=Control(%22X%22,%22Z%22)`
			inner := sync.WaitGroup{}
			inner.Add(1)
			go func() {
				defer inner.Done()
				for i := 0; i < 5; i++ {
					if _, code := getBody(t, explain); code != http.StatusOK && code != http.StatusUnprocessableEntity {
						errs <- fmt.Sprintf("explain status %d", code)
						return
					}
				}
			}()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(mut, "application/json",
					strings.NewReader(`{"session":"`+rr.Session+`","retract":"Own(\"Y\",\"Z\",0.7)."}`))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				resp, err = http.Post(mut, "application/json",
					strings.NewReader(`{"session":"`+rr.Session+`","add":"Own(\"Y\",\"Z\",0.7)."}`))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
			}
			inner.Wait()
			// The session ends with the chain restored.
			if _, code := getBody(t, explain); code != http.StatusOK {
				errs <- fmt.Sprintf("final explain status %d", code)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
