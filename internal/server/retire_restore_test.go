package server

// Regression tests for the restore and retirement concurrency model:
// restores of distinct sessions run in parallel (per-session singleflight,
// not a server-wide lock), concurrent restores of one session share a
// single disk read, LRU eviction no longer pays snapshot encode + fsync
// inline, and the drain barriers (restore-after-evict, SnapshotAll) still
// observe every queued retirement.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seedSessions opens n durable sessions and returns their ids and their
// pre-eviction /reason responses (the byte-identity oracle for restore).
func seedSessions(t *testing.T, url string, n int) ([]string, []reasonResponse) {
	t.Helper()
	ids := make([]string, n)
	before := make([]reasonResponse, n)
	for i := range ids {
		var rr reasonResponse
		body := fmt.Sprintf(`{"app":"company-control","facts":"Own(\"A%d\",\"B%d\",0.6)."}`, i, i)
		if resp := postJSON(t, url+"/reason", body, &rr); resp.StatusCode != http.StatusOK {
			t.Fatalf("open session %d: status %d", i, resp.StatusCode)
		}
		ids[i] = rr.Session
		// A committed write stands the maintainer up, so eviction and
		// release exercise the real checkpoint path, not the read-only
		// (WAL-header-only) shortcut.
		if resp := postJSON(t, url+"/facts",
			fmt.Sprintf(`{"session":%q,"add":"Own(\"B%d\",\"C%d\",0.7)."}`, rr.Session, i, i), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed write %d: status %d", i, resp.StatusCode)
		}
		postJSON(t, url+"/reason", `{"session":"`+rr.Session+`"}`, &before[i])
	}
	return ids, before
}

// TestParallelRestoresDistinctSessions is the restore-storm regression: N
// distinct cold sessions touched at once must all be inside their disk
// restores simultaneously. Under the old server-wide restore lock the
// barrier below can never fill — one restore holds the lock while the
// other N-1 wait outside restoreSession — and the test times out.
func TestParallelRestoresDistinctSessions(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	ts1, s1 := newTestServerFull(t, Options{WALDir: dir})
	ids, before := seedSessions(t, ts1.URL, n)
	s1.SnapshotAll()
	ts1.Close()

	s2, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	arrived := make(chan string, n)
	release := make(chan struct{})
	s2.testHookRestore = func(id string) {
		arrived <- id
		<-release
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	after := make([]reasonResponse, n)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			if resp := postJSON(t, ts2.URL+"/reason", `{"session":"`+id+`"}`, &after[i]); resp.StatusCode != http.StatusOK {
				t.Errorf("restore read %s: status %d", id, resp.StatusCode)
			}
		}(i, id)
	}

	// All n restores must reach the hook concurrently.
	seen := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(seen) < n {
		select {
		case id := <-arrived:
			seen[id] = true
		case <-deadline:
			t.Fatalf("only %d of %d restores running concurrently — restores are serialized", len(seen), n)
		}
	}
	close(release)
	wg.Wait()

	for i := range ids {
		if after[i].Epoch != before[i].Epoch || after[i].Facts != before[i].Facts {
			t.Errorf("session %s restored state differs: before %+v, after %+v", ids[i], before[i], after[i])
		}
	}
	var st statsResponse
	getJSON(t, ts2.URL+"/stats", &st)
	if st.WritePath.Restores != n {
		t.Errorf("restores = %d, want %d", st.WritePath.Restores, n)
	}
	if st.WritePath.RestoreLatency.Count != n {
		t.Errorf("restore latency count = %d, want %d", st.WritePath.RestoreLatency.Count, n)
	}
}

// TestRestoreSingleflight: concurrent requests for ONE cold session share a
// single restore — the disk work runs once, every waiter gets the restored
// session.
func TestRestoreSingleflight(t *testing.T) {
	const m = 4
	dir := t.TempDir()
	ts1, s1 := newTestServerFull(t, Options{WALDir: dir})
	ids, before := seedSessions(t, ts1.URL, 1)
	s1.SnapshotAll()
	ts1.Close()

	s2, err := NewWithOptions(Options{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	entered := make(chan struct{}, m)
	gate := make(chan struct{})
	s2.testHookRestore = func(string) {
		calls.Add(1)
		entered <- struct{}{}
		<-gate
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	after := make([]reasonResponse, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if resp := postJSON(t, ts2.URL+"/reason", `{"session":"`+ids[0]+`"}`, &after[i]); resp.StatusCode != http.StatusOK {
				t.Errorf("reader %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	<-entered // the leader is inside the restore
	// Give the other readers time to join the flight, then let it finish.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("restore ran %d times for one session, want 1 (singleflight)", got)
	}
	for i := range after {
		if after[i].Epoch != before[0].Epoch {
			t.Errorf("reader %d epoch = %d, want %d", i, after[i].Epoch, before[0].Epoch)
		}
	}
}

// TestAsyncRetirementDoesNotBlockEviction: the request that triggers an LRU
// eviction returns while the evicted session's checkpoint runs in the
// background, and a read racing the retirement waits it out and then
// restores at the exact pre-eviction epoch.
func TestAsyncRetirementDoesNotBlockEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids, before := seedSessions(t, ts.URL, 1)

	// Opening a second session evicts the first; the response must come
	// back while the retirement is still parked on the hook.
	start := time.Now()
	if resp := postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("evicting open: status %d", resp.StatusCode)
	}
	evictLatency := time.Since(start)
	select {
	case id := <-retiring:
		if id != ids[0] {
			t.Fatalf("retiring %q, want %q", id, ids[0])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("eviction returned but no background retirement started")
	}
	if n := s.pendingRetirements(); n != 1 {
		t.Errorf("pending retirements = %d, want 1", n)
	}
	t.Logf("evicting request returned in %v with checkpoint still in flight", evictLatency)

	// A read of the retiring session blocks on the retirement barrier, then
	// restores the checkpointed state.
	done := make(chan reasonResponse, 1)
	go func() {
		var rr reasonResponse
		postJSON(t, ts.URL+"/reason", `{"session":"`+ids[0]+`"}`, &rr)
		done <- rr
	}()
	select {
	case <-done:
		t.Fatal("read of a retiring session completed before its checkpoint was durable")
	case <-time.After(100 * time.Millisecond):
	}
	close(finish)
	select {
	case rr := <-done:
		if rr.Epoch != before[0].Epoch {
			t.Errorf("restored epoch = %d, want %d", rr.Epoch, before[0].Epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed after the retirement finished")
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WritePath.Retirements.Async == 0 {
		t.Errorf("retirement counters = %+v, want async >= 1", st.WritePath.Retirements)
	}
}

// TestSnapshotAllWaitsForRetirements: the shutdown barrier must not report
// "checkpointed for handoff" while a background retirement is still
// writing — SnapshotAll drains the queue first.
func TestSnapshotAllWaitsForRetirements(t *testing.T) {
	dir := t.TempDir()
	s, err := NewWithOptions(Options{WALDir: dir, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	retiring := make(chan string, 1)
	finish := make(chan struct{})
	s.testHookRetire = func(id string) {
		retiring <- id
		<-finish
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seedSessions(t, ts.URL, 1)
	postJSON(t, ts.URL+"/reason", `{"app":"stress-simple","scenario":true}`, nil) // evicts
	<-retiring

	done := make(chan int, 1)
	go func() { done <- s.SnapshotAll() }()
	select {
	case <-done:
		t.Fatal("SnapshotAll returned while a retirement was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(finish)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SnapshotAll never returned after the retirement finished")
	}
	if n := s.pendingRetirements(); n != 0 {
		t.Errorf("pending retirements after SnapshotAll = %d, want 0", n)
	}
}
