package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// This file is the checkpoint half of the durable write path: serializing a
// session's live engine to its snapshot file (internal/snapshot over
// chase.Live.EncodeState) and using those snapshots as WAL checkpoints —
// compaction truncates a session's log to a tail once the fixpoint is
// durable, eviction and drain checkpoint sessions so their state survives
// without a replay, and restore loads the snapshot plus the short tail
// instead of re-running every committed delta.

// snapPath is the session's snapshot file, next to its WAL.
func (s *Server) snapPath(id string) string {
	return filepath.Join(s.walDir, id+".snap")
}

// shouldCompact reports whether the session's WAL has outgrown a threshold.
// Runs on the session's commit leader.
func (s *Server) shouldCompact(sess *session) bool {
	if s.compactCommits > 0 && sess.deltasSinceSnap >= s.compactCommits {
		return true
	}
	if s.compactBytes > 0 {
		if fi, err := os.Stat(s.walPath(sess.id)); err == nil && fi.Size() >= s.compactBytes {
			return true
		}
	}
	return false
}

// compact checkpoints the session at commit epoch seq and truncates its WAL
// to a tail. It runs on the session's commit leader between batches, so the
// maintainer holds exactly the state at seq. The ordering is crash-safe:
// the snapshot is durable before the log is touched, so a crash leaves
// either the old log (snapshot simply unused, deltas <= seq replayed and
// skipped... they are filtered by seq on restore) or the truncated one
// (restore = snapshot + empty tail); a crash inside the log rewrite itself
// leaves an unreadable log, which restore repairs from the snapshot by
// recreating the tail log.
func (s *Server) compact(sess *session, seq uint64) error {
	m := sess.cmt.Maintainer()
	if m == nil {
		return nil
	}
	payload, err := m.EncodeState()
	if err != nil {
		return err // poisoned maintainer: never checkpoint partial repairs
	}
	h := snapshot.Header{App: sess.app, Program: s.fingerprints[sess.app], Epoch: seq}
	if err := snapshot.Write(s.snapPath(sess.id), h, payload); err != nil {
		return err
	}
	s.snapshotWrites.Add(1)
	old := sess.getWAL()
	l, err := wal.Create(s.walPath(sess.id), wal.Header{
		App:      sess.app,
		Program:  h.Program,
		Base:     sess.extra,
		StartSeq: seq,
	}, s.walSync)
	if err != nil {
		return fmt.Errorf("recreating WAL after checkpoint: %w", err)
	}
	sess.setWAL(l)
	if old != nil {
		_ = old.Close()
	}
	sess.deltasSinceSnap = 0
	s.compactions.Add(1)
	return nil
}

// retire quiesces a session leaving the session table (eviction): the
// committer drains and stops, the fixpoint is checkpointed so the eviction
// discards nothing a restore would have to recompute, and the WAL handle is
// closed. The files stay on disk — they are what restore reads.
func (s *Server) retire(sess *session) {
	sess.cmt.CloseWait()
	s.snapshotQuiesced(sess)
	if l := sess.getWAL(); l != nil {
		_ = l.Close()
	}
}

// retirement is one session's in-flight retirement. It is registered in
// Server.retiring until the session's files are final: a restore of the
// same session waits on done before touching disk, and the drain barrier
// waits on every entry.
type retirement struct {
	done chan struct{}
}

// registerRetirement records a pending retirement for id. It runs as the
// session store's locked eviction hook — in the same critical section
// that removes the session from the table — so at every instant a
// session is either resident or has a retirement entry: a restore (or a
// /release) that misses the table is guaranteed to find the entry and
// wait for the files to be final instead of racing the in-flight retire.
func (s *Server) registerRetirement(id string) {
	s.retireMu.Lock()
	s.retiring[id] = &retirement{done: make(chan struct{})}
	s.retireMu.Unlock()
}

// finishRetirement completes a registered retirement: the entry leaves
// the table and every waiter is released. The session's files are final
// by the time this is called.
func (s *Server) finishRetirement(id string) {
	s.retireMu.Lock()
	r := s.retiring[id]
	delete(s.retiring, id)
	s.retireMu.Unlock()
	if r != nil {
		close(r.done)
	}
}

// retireEvicted retires a session that just left the session table (its
// retirement was registered by the locked eviction hook): handed to a
// background retirer bounded by the retireSlots semaphore, so the request
// whose insert tipped the session store over capacity does not pay the
// committer quiesce + snapshot encode + fsync of an unrelated session.
// With no free slot (or the queue disabled or the server closing) it
// retires inline: backpressure on eviction, never an unbounded goroutine
// pile-up. Retirers are transient goroutines — no persistent worker — so
// an idle server holds no extra goroutines. Either way the registered
// retirement is completed when the files are final.
func (s *Server) retireEvicted(id string, sess *session) {
	s.retireMu.Lock()
	if s.retireClosed || s.retireSlots == nil {
		s.retireMu.Unlock()
		s.inlineRetires.Add(1)
		s.retire(sess)
		s.finishRetirement(id)
		return
	}
	select {
	case s.retireSlots <- struct{}{}:
	default:
		s.retireMu.Unlock()
		s.inlineRetires.Add(1)
		s.retire(sess)
		s.finishRetirement(id)
		return
	}
	s.retireMu.Unlock()
	go func() {
		defer func() {
			s.finishRetirement(id)
			<-s.retireSlots
		}()
		if s.testHookRetire != nil {
			s.testHookRetire(id)
		}
		s.retire(sess)
		s.asyncRetires.Add(1)
	}()
}

// waitRetirement blocks until a pending background retirement of id (if
// any) has finished: the retirer is writing the snapshot and closing the
// WAL handle that a restore of the same session is about to read.
func (s *Server) waitRetirement(ctx context.Context, id string) error {
	s.retireMu.Lock()
	r := s.retiring[id]
	s.retireMu.Unlock()
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return chase.ContextErr(ctx)
	}
}

// drainRetirements waits for every queued or running background retirement
// to finish — the barrier SnapshotAll and Close take before walking the
// session files themselves.
func (s *Server) drainRetirements() {
	for {
		s.retireMu.Lock()
		var r *retirement
		for _, pending := range s.retiring {
			r = pending
			break
		}
		s.retireMu.Unlock()
		if r == nil {
			return
		}
		<-r.done
	}
}

// pendingRetirements reports the retirement-queue depth for /stats.
func (s *Server) pendingRetirements() int {
	s.retireMu.Lock()
	defer s.retireMu.Unlock()
	return len(s.retiring)
}

// Close quiesces the server for shutdown: the retirement queue is drained
// and refused from then on (later evictions retire inline), and with a WAL
// directory every live session is checkpointed and released. Safe to call
// more than once.
func (s *Server) Close() {
	s.retireMu.Lock()
	s.retireClosed = true
	s.retireMu.Unlock()
	s.SnapshotAll()
}

// snapshotQuiesced checkpoints a session whose committer has fully stopped
// (CloseWait returned): Applied() is exact and nothing mutates the
// maintainer. The epoch guard skips the write when the on-disk snapshot is
// already current — re-evicting an unmodified restored session is free.
// Read-only sessions (no maintainer ever stood up) have nothing to
// serialize; their WAL header alone restores them.
func (s *Server) snapshotQuiesced(sess *session) bool {
	if s.walDir == "" {
		return false
	}
	m := sess.cmt.Maintainer()
	if m == nil {
		return false
	}
	epoch := sess.cmt.Applied()
	if h, err := snapshot.ReadHeader(s.snapPath(sess.id)); err == nil && h.Epoch >= epoch {
		return false
	}
	payload, err := m.EncodeState()
	if err != nil {
		s.logf("server: session %s: skipping eviction checkpoint: %v", sess.id, err)
		return false
	}
	h := snapshot.Header{App: sess.app, Program: s.fingerprints[sess.app], Epoch: epoch}
	if err := snapshot.Write(s.snapPath(sess.id), h, payload); err != nil {
		s.logf("server: session %s: eviction checkpoint failed: %v", sess.id, err)
		return false
	}
	s.snapshotWrites.Add(1)
	return true
}

// SnapshotAll checkpoints every live session and releases it — the
// snapshot-then-handoff half of a graceful drain. After it returns, every
// session's state is on disk and another worker sharing the directory can
// restore it from the snapshot plus an empty tail. Queued background
// retirements are waited out first, so the handoff covers sessions evicted
// moments before the drain too. Returns the number of snapshots written
// (sessions already current on disk are counted as handed off but not
// rewritten).
func (s *Server) SnapshotAll() (written int) {
	s.drainRetirements()
	if s.walDir == "" {
		return 0
	}
	for _, id := range s.sessions.Keys() {
		sess, ok := s.sessions.Get(id)
		if !ok {
			continue
		}
		sess.cmt.CloseWait()
		if s.snapshotQuiesced(sess) {
			written++
		}
		if l := sess.getWAL(); l != nil {
			_ = l.Close()
		}
		s.sessions.Remove(id)
	}
	return written
}

// restoreFromSnapshot rebuilds a session from its snapshot plus the WAL
// tail: deserialize the engine (byte-identical to the checkpointed state —
// same fact ids, proofs and aggregation state), then replay only committed
// deltas with sequence numbers past the snapshot epoch. A missing or
// unreadable log next to a good snapshot is the compaction crash window
// (the snapshot was durable before the log rewrite); the tail log is
// recreated empty at the snapshot epoch.
func (s *Server) restoreFromSnapshot(ctx context.Context, id string, h snapshot.Header, payload []byte) (*session, error) {
	pipe := s.pipe(h.App)
	if pipe == nil {
		return nil, fmt.Errorf("unknown application %q", h.App)
	}
	if got, want := h.Program, s.fingerprints[h.App]; got != want {
		return nil, fmt.Errorf("program fingerprint changed (snapshot %s, compiled %s)", got, want)
	}
	live, err := chase.RestoreLive(pipe.Program(), s.chaseOpts, payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot state: %w", err)
	}
	m := incremental.FromLive(live)
	lastSeq := h.Epoch
	var logHandle *wal.Log
	var extra []ast.Atom
	rec, walErr := wal.Replay(s.walPath(id))
	if walErr == nil {
		extra = rec.Header.Base
		var tail []wal.Delta
		for _, d := range rec.Live() {
			if d.Seq > h.Epoch {
				tail = append(tail, d)
			}
		}
		var bad uint64
		for i, d := range tail {
			if _, _, uerr := m.UpdateContext(ctx, d.Add, d.Retract); uerr != nil {
				if i != len(tail)-1 {
					return nil, fmt.Errorf("tail replay: delta %d/%d failed before the tail end: %w", i+1, len(tail), uerr)
				}
				// The poisoning write of the previous life, crashed before
				// its abort record landed: rebuild from the snapshot without
				// it and mark it aborted.
				live2, rerr := chase.RestoreLive(pipe.Program(), s.chaseOpts, payload)
				if rerr != nil {
					return nil, fmt.Errorf("snapshot state: %w", rerr)
				}
				m = incremental.FromLive(live2)
				for _, d2 := range tail[:i] {
					if _, _, uerr2 := m.UpdateContext(ctx, d2.Add, d2.Retract); uerr2 != nil {
						return nil, fmt.Errorf("tail replay failed on clean rebuild: %w", uerr2)
					}
				}
				bad = d.Seq
			}
		}
		s.tailReplays.Add(uint64(len(tail)))
		if rl := rec.LastSeq(); rl > lastSeq {
			lastSeq = rl
		}
		logHandle, err = rec.OpenAppend(s.walSync)
		if err != nil {
			return nil, err
		}
		if bad != 0 {
			_ = logHandle.AppendAbort(bad)
			_ = logHandle.Sync()
		}
	} else {
		if !os.IsNotExist(walErr) {
			s.logf("server: session %s: WAL unreadable next to a good snapshot (%v); recreating tail log at epoch %d", id, walErr, h.Epoch)
		}
		logHandle, err = wal.Create(s.walPath(id), wal.Header{
			App:      h.App,
			Program:  h.Program,
			StartSeq: h.Epoch,
		}, s.walSync)
		if err != nil {
			return nil, err
		}
	}
	res, err := m.Result()
	if err != nil {
		_ = logHandle.Close()
		return nil, err
	}
	sess := &session{id: id, app: h.App, extra: extra, result: res, epoch: lastSeq, syncWAL: s.logSync}
	sess.setWAL(logHandle)
	sess.cmt = core.NewCommitter(core.CommitterConfig{
		Queue:        s.writeQueue,
		Window:       s.commitWindow,
		ApplyTimeout: s.timeout,
		StartSeq:     lastSeq,
		Maintainer:   m,
		ApplyLock:    &sess.renderMu,
		OnLog:        sess.onLog,
		OnAbort:      sess.onAbort,
		OnApply:      s.onApply(sess),
	})
	return sess, nil
}
