// Package synth generates synthetic financial extensional data for the
// bundled KG applications: ownership graphs for company control and close
// links, debt networks for the stress tests. The paper's evaluation runs on
// artificial data for confidentiality reasons (its Section 6); these
// generators reproduce that protocol, with one extra capability the
// experiments of Figures 17 and 18 need: generating instances whose proof of
// a designated query has exactly a requested chase-step length.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/term"
)

// Scenario is one synthetic workload: extensional facts for a KG
// application plus a designated explanation query.
type Scenario struct {
	// App is the application registry name (apps.Name*).
	App string
	// Facts is the extensional database.
	Facts []ast.Atom
	// Query is the explanation query in concrete syntax, e.g.
	// `Control("N0", "N4")`.
	Query string
	// WantSteps is the expected proof size in chase steps (0 when not
	// targeted).
	WantSteps int
}

// name builds an entity name with a scenario-unique prefix so that facts
// from different scenarios never collide.
func name(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// shareFor draws a majority share in [0.51, 0.95] deterministically from
// the rng.
func shareFor(rng *rand.Rand) float64 {
	return 0.51 + float64(rng.Intn(45))/100
}

// ControlChain builds a pure ownership chain N0 -> N1 -> ... -> Nsteps with
// majority shares: the proof of Control(N0, Nsteps) takes exactly `steps`
// chase steps (one σ1 activation plus steps-1 σ3 activations).
func ControlChain(steps int, seed int64) Scenario {
	if steps < 1 {
		steps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("N%d_", seed)
	var facts []ast.Atom
	for i := 0; i < steps; i++ {
		facts = append(facts, ast.NewAtom("Own",
			term.Str(name(prefix, i)), term.Str(name(prefix, i+1)), term.Float(shareFor(rng))))
	}
	return Scenario{
		App:       apps.NameCompanyControl,
		Facts:     facts,
		Query:     fmt.Sprintf("Control(%q, %q)", name(prefix, 0), name(prefix, steps)),
		WantSteps: steps,
	}
}

// ControlJoint builds a joint-control case: N0 majority-owns k holding
// companies which together own just over 50% of the target T. The final σ3
// aggregation has k contributors. The proof takes k+1 chase steps (k σ1
// activations plus the aggregating σ3).
func ControlJoint(k int, seed int64) Scenario {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("J%d_", seed)
	target := prefix + "T"
	var facts []ast.Atom
	piece := 0.51 / float64(k)
	for i := 0; i < k; i++ {
		h := name(prefix+"H", i)
		facts = append(facts, ast.NewAtom("Own",
			term.Str(name(prefix, 0)), term.Str(h), term.Float(shareFor(rng))))
		facts = append(facts, ast.NewAtom("Own",
			term.Str(h), term.Str(target), term.Float(piece)))
	}
	return Scenario{
		App:       apps.NameCompanyControl,
		Facts:     facts,
		Query:     fmt.Sprintf("Control(%q, %q)", name(prefix, 0), target),
		WantSteps: k + 1,
	}
}

// ControlChainJoint combines recursion and aggregation: a majority chain of
// `chain` hops ending in an entity that, together with k-1 sibling holdings,
// jointly owns the target. The proof mixes Γ cycles with a final
// multi-contributor aggregation.
func ControlChainJoint(chain, k int, seed int64) Scenario {
	if chain < 1 {
		chain = 1
	}
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("CJ%d_", seed)
	target := prefix + "T"
	var facts []ast.Atom
	for i := 0; i < chain; i++ {
		facts = append(facts, ast.NewAtom("Own",
			term.Str(name(prefix, i)), term.Str(name(prefix, i+1)), term.Float(shareFor(rng))))
	}
	// The chain's head controls k-1 further holdings; the chain's tail and
	// the holdings jointly own the target.
	piece := 0.51 / float64(k)
	facts = append(facts, ast.NewAtom("Own",
		term.Str(name(prefix, chain)), term.Str(target), term.Float(piece)))
	for i := 1; i < k; i++ {
		h := name(prefix+"H", i)
		facts = append(facts,
			ast.NewAtom("Own", term.Str(name(prefix, 0)), term.Str(h), term.Float(shareFor(rng))),
			ast.NewAtom("Own", term.Str(h), term.Str(target), term.Float(piece)),
		)
	}
	return Scenario{
		App:   apps.NameCompanyControl,
		Facts: facts,
		Query: fmt.Sprintf("Control(%q, %q)", name(prefix, 0), target),
	}
}

// StressCascade builds a default cascade for the two-channel stress test:
// entity N0 is shocked and the default propagates along a chain of debts,
// alternating the long-term and short-term channels. The proof of
// Default(Nk) with k = (steps-1)/2 hops takes exactly `steps` chase steps
// when steps is odd (σ4 + per hop one Risk rule and σ7); when steps is even
// an extra shocked debtor feeding the first creditor adds one step and makes
// the first aggregation multi-contributor.
func StressCascade(steps int, seed int64) Scenario {
	if steps < 1 {
		steps = 1
	}
	if steps == 2 {
		// Proof sizes 1, 3, 4, 5, ... are achievable; 2 is not (every hop
		// needs a Risk and a Default step). Round up.
		steps = 3
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("S%d_", seed)
	hops := (steps - 1) / 2
	extra := steps%2 == 0

	var facts []ast.Atom
	capital := func(i int) float64 { return 2 + float64(rng.Intn(5)) }
	caps := make([]float64, hops+1)
	for i := range caps {
		caps[i] = capital(i)
	}
	facts = append(facts, ast.NewAtom("Shock", term.Str(name(prefix, 0)), term.Float(caps[0]+3)))
	for i := 0; i <= hops; i++ {
		facts = append(facts, ast.NewAtom("HasCapital", term.Str(name(prefix, i)), term.Float(caps[i])))
	}
	for i := 0; i < hops; i++ {
		channel := "LongTermDebts"
		if i%2 == 1 {
			channel = "ShortTermDebts"
		}
		// Each debt exceeds the creditor's capital so the cascade always
		// propagates.
		facts = append(facts, ast.NewAtom(channel,
			term.Str(name(prefix, i)), term.Str(name(prefix, i+1)), term.Float(caps[i+1]+2)))
	}
	if extra {
		m := prefix + "X"
		facts = append(facts,
			ast.NewAtom("Shock", term.Str(m), term.Float(9)),
			ast.NewAtom("HasCapital", term.Str(m), term.Float(3)),
			ast.NewAtom("LongTermDebts", term.Str(m), term.Str(name(prefix, 1)), term.Float(1)),
		)
	}
	queryEntity := name(prefix, hops)
	return Scenario{
		App:       apps.NameStressTest,
		Facts:     facts,
		Query:     fmt.Sprintf("Default(%q)", queryEntity),
		WantSteps: steps,
	}
}

// StressFanIn builds a single creditor exposed to k shocked debtors over
// both channels: the Risk aggregations have multiple contributors and the
// final σ7 sums both channels.
func StressFanIn(k int, seed int64) Scenario {
	if k < 2 {
		k = 2
	}
	prefix := fmt.Sprintf("F%d_", seed)
	target := prefix + "T"
	var facts []ast.Atom
	facts = append(facts, ast.NewAtom("HasCapital", term.Str(target), term.Float(float64(2*k))))
	for i := 0; i < k; i++ {
		d := name(prefix+"D", i)
		facts = append(facts,
			ast.NewAtom("Shock", term.Str(d), term.Float(8)),
			ast.NewAtom("HasCapital", term.Str(d), term.Float(2)),
		)
		channel := "LongTermDebts"
		if i%2 == 1 {
			channel = "ShortTermDebts"
		}
		facts = append(facts, ast.NewAtom(channel,
			term.Str(d), term.Str(target), term.Float(3)))
	}
	return Scenario{
		App:       apps.NameStressTest,
		Facts:     facts,
		Query:     fmt.Sprintf("Default(%q)", target),
		WantSteps: 0,
	}
}

// CloseLinkChain builds an ownership chain whose integrated products stay
// above the close-link threshold for `hops` multiplications.
func CloseLinkChain(hops int, seed int64) Scenario {
	if hops < 1 {
		hops = 1
	}
	prefix := fmt.Sprintf("C%d_", seed)
	var facts []ast.Atom
	for i := 0; i < hops; i++ {
		facts = append(facts, ast.NewAtom("Own",
			term.Str(name(prefix, i)), term.Str(name(prefix, i+1)), term.Float(0.9)))
	}
	return Scenario{
		App:       apps.NameCloseLink,
		Facts:     facts,
		Query:     fmt.Sprintf("CloseLink(%q, %q)", name(prefix, 0), name(prefix, hops)),
		WantSteps: hops + 1,
	}
}

// RandomControl builds a random layered ownership graph: `layers` layers of
// `width` companies with majority or minority edges between consecutive
// layers. It is the workload used to sample the pool of explanations for the
// user studies. No query is designated; callers explain derived facts of
// their choice.
func RandomControl(layers, width int, seed int64) Scenario {
	if layers < 2 {
		layers = 2
	}
	if width < 1 {
		width = 1
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("R%d_", seed)
	var facts []ast.Atom
	node := func(l, i int) string { return fmt.Sprintf("%sL%dC%d", prefix, l, i) }
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			// Each company owns one or two companies of the next layer.
			targets := 1 + rng.Intn(2)
			for t := 0; t < targets; t++ {
				j := rng.Intn(width)
				share := 0.2 + float64(rng.Intn(60))/100
				facts = append(facts, ast.NewAtom("Own",
					term.Str(node(l, i)), term.Str(node(l+1, j)), term.Float(share)))
			}
		}
	}
	return Scenario{App: apps.NameCompanyControl, Facts: facts}
}

// LayeredOwnership builds a large layered ownership DAG for join-throughput
// benchmarking: `layers` layers of `width` companies each, every company
// owning `fanout` distinct random companies of the next layer, so the EKG
// holds layers*width*fanout Own facts plus width Source markers on the first
// layer. Only about 8% of the edges carry majority shares (> 0.5), which
// makes majority-reachability chases join-dominated: an engine scans every
// out-edge of a reached company but extends the frontier through few of
// them, so the probes-per-derivation ratio stays high and executor join
// throughput — not fact emission — decides the wall time. Duplicate edges
// between the same pair keep only the first share (the store deduplicates by
// atom identity, not by pair, so the generator avoids pair collisions up
// front to make the fact count exact).
func LayeredOwnership(layers, width, fanout int, seed int64) []ast.Atom {
	if layers < 2 {
		layers = 2
	}
	if width < 1 {
		width = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	if fanout > width {
		fanout = width
	}
	rng := rand.New(rand.NewSource(seed))
	prefix := fmt.Sprintf("B%d_", seed)
	node := func(l, i int) string { return fmt.Sprintf("%sL%dC%d", prefix, l, i) }
	facts := make([]ast.Atom, 0, layers*width*fanout+width)
	for i := 0; i < width; i++ {
		facts = append(facts, ast.NewAtom("Source", term.Str(node(0, i))))
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			// Sample fanout distinct targets via a partial Fisher-Yates over
			// the next layer's indexes.
			perm := rng.Perm(width)
			for t := 0; t < fanout; t++ {
				share := 0.05 + float64(rng.Intn(45))/100 // minority: (0.05, 0.50)
				if rng.Intn(1000) < 80 {
					share = 0.51 + float64(rng.Intn(44))/100 // ~8% majority
				}
				facts = append(facts, ast.NewAtom("Own",
					term.Str(node(l, i)), term.Str(node(l+1, perm[t])), term.Float(share)))
			}
		}
	}
	return facts
}
