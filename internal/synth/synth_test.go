package synth

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/parser"
)

// runScenario compiles the scenario's application, reasons over its facts
// and returns the proof of its query.
func runScenario(t *testing.T, s Scenario) (*core.Pipeline, *chase.Result, *chase.Proof) {
	t.Helper()
	app, err := apps.ByName(s.App)
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.Pipeline(core.Config{SkipEnhancement: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(s.Facts...)
	if err != nil {
		t.Fatalf("Reason: %v", err)
	}
	pattern, err := parser.ParseAtom(s.Query)
	if err != nil {
		t.Fatalf("query %q: %v", s.Query, err)
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		t.Fatalf("lookup %q: %v", s.Query, err)
	}
	proof, err := res.ExtractProof(id)
	if err != nil {
		t.Fatal(err)
	}
	return p, res, proof
}

// TestControlChainProofLengths: the generator hits the requested chase-step
// count exactly, across the Figure 17/18 sweep range.
func TestControlChainProofLengths(t *testing.T) {
	for _, steps := range []int{1, 2, 3, 6, 9, 12, 15, 18, 21} {
		s := ControlChain(steps, int64(steps))
		if s.WantSteps != steps {
			t.Fatalf("WantSteps = %d, want %d", s.WantSteps, steps)
		}
		_, _, proof := runScenario(t, s)
		if proof.Size() != steps {
			t.Errorf("chain(%d): proof size = %d", steps, proof.Size())
		}
	}
}

// TestStressCascadeProofLengths covers odd lengths (pure cascades) and even
// lengths (cascades with an extra contributing debtor).
func TestStressCascadeProofLengths(t *testing.T) {
	for _, steps := range []int{1, 3, 4, 5, 7, 9, 10, 13, 16, 19, 22} {
		s := StressCascade(steps, int64(steps))
		_, _, proof := runScenario(t, s)
		if proof.Size() != s.WantSteps {
			t.Errorf("cascade(%d): proof size = %d, want %d", steps, proof.Size(), s.WantSteps)
		}
	}
}

func TestStressCascadeRoundsUpTwo(t *testing.T) {
	s := StressCascade(2, 1)
	if s.WantSteps != 3 {
		t.Errorf("WantSteps = %d, want 3 (2 is not achievable)", s.WantSteps)
	}
}

// TestScenariosExplainable: every generated scenario produces a complete
// explanation.
func TestScenariosExplainable(t *testing.T) {
	scenarios := []Scenario{
		ControlChain(5, 1),
		ControlJoint(3, 2),
		StressCascade(7, 3),
		StressCascade(6, 4),
		StressFanIn(4, 5),
		CloseLinkChain(3, 6),
	}
	for _, s := range scenarios {
		p, res, proof := runScenario(t, s)
		e, err := p.ExplainFact(res, proof.Target)
		if err != nil {
			t.Errorf("%s %q: %v", s.App, s.Query, err)
			continue
		}
		if err := e.Verify(); err != nil {
			t.Errorf("%s %q: %v", s.App, s.Query, err)
		}
	}
}

// TestControlJointContributors: the final aggregation has k contributors.
func TestControlJointContributors(t *testing.T) {
	s := ControlJoint(4, 9)
	_, res, proof := runScenario(t, s)
	if proof.Size() != s.WantSteps {
		t.Errorf("proof size = %d, want %d", proof.Size(), s.WantSteps)
	}
	last := proof.Spine[len(proof.Spine)-1]
	if len(last.Contributors) != 4 {
		t.Errorf("contributors = %d, want 4", len(last.Contributors))
	}
	_ = res
}

// TestCloseLinkChainProofLength: hops multiplications plus the final
// aggregation.
func TestCloseLinkChainProofLength(t *testing.T) {
	for _, hops := range []int{1, 2, 3, 4} {
		s := CloseLinkChain(hops, int64(hops))
		_, _, proof := runScenario(t, s)
		if proof.Size() != s.WantSteps {
			t.Errorf("closelink(%d): proof size = %d, want %d", hops, proof.Size(), s.WantSteps)
		}
	}
}

// TestSeedsProduceDistinctProofs: different seeds give distinct constants
// (the paper samples 10 distinct proofs per length).
func TestSeedsProduceDistinctProofs(t *testing.T) {
	a := ControlChain(5, 1)
	b := ControlChain(5, 2)
	if a.Query == b.Query {
		t.Error("seeds produce identical queries")
	}
	if a.Facts[0].Key() == b.Facts[0].Key() {
		t.Error("seeds produce identical facts")
	}
	// Same seed reproduces the same scenario.
	c := ControlChain(5, 1)
	if a.Query != c.Query || a.Facts[0].Key() != c.Facts[0].Key() {
		t.Error("same seed differs")
	}
}

// TestRandomControlDerivesSomething: the random layered graph derives
// control facts for study sampling.
func TestRandomControlDerivesSomething(t *testing.T) {
	s := RandomControl(4, 4, 7)
	app, _ := apps.ByName(s.App)
	p, err := app.Pipeline(core.Config{SkipEnhancement: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(s.Facts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers()) == 0 {
		t.Error("random graph derived no control facts")
	}
	exps, err := p.ExplainAll(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if err := e.Verify(); err != nil {
			t.Error(err)
		}
	}
}

func TestDegenerateParameters(t *testing.T) {
	if s := ControlChain(0, 1); s.WantSteps != 1 {
		t.Error("ControlChain(0) not clamped")
	}
	if s := ControlJoint(1, 1); s.WantSteps != 3 { // clamped to k=2
		t.Errorf("ControlJoint(1) WantSteps = %d", s.WantSteps)
	}
	if s := StressCascade(0, 1); s.WantSteps != 1 {
		t.Error("StressCascade(0) not clamped")
	}
	if s := CloseLinkChain(0, 1); s.WantSteps != 2 {
		t.Error("CloseLinkChain(0) not clamped")
	}
}

// TestControlChainJoint combines recursion with a final joint aggregation:
// the query is derivable and the explanation engages both a cycle and a
// multi-contributor aggregation.
func TestControlChainJoint(t *testing.T) {
	for _, tc := range []struct{ chain, k int }{{1, 2}, {2, 3}, {3, 2}, {0, 1}} {
		s := ControlChainJoint(tc.chain, tc.k, int64(tc.chain*10+tc.k))
		p, res, proof := runScenario(t, s)
		e, err := p.ExplainFact(res, proof.Target)
		if err != nil {
			t.Fatalf("chain=%d k=%d: %v", tc.chain, tc.k, err)
		}
		if err := e.Verify(); err != nil {
			t.Errorf("chain=%d k=%d: %v", tc.chain, tc.k, err)
		}
		last := proof.Spine[len(proof.Spine)-1]
		if !last.MultiContributor() {
			t.Errorf("chain=%d k=%d: final aggregation has %d contributors",
				tc.chain, tc.k, len(last.Contributors))
		}
	}
}
