package parser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics, and that successfully parsed
// programs round-trip through their String rendering to an equivalent
// program (same rendering on the second pass).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`P("a").`,
		`@name("x"). @output("P"). P(X) :- Q(X).`,
		`@label("r") Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).`,
		`Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.`,
		`MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.`,
		`Eligible(X) :- HasCapital(X, P), not Default(X).`,
		`:- Control(X, Y), Sanctioned(Y).`,
		`W(X, V) :- P(X, A, B, C), V = (A + B) * (C - 2.5).`,
		`P(X) :- Q(X), X != "a", X == true.`,
		"% comment\nP(\"x\"). # another",
		`P("\n\t\"esc").`,
		`@bogus("v").`,
		`P(X`,
		`:-`,
		`...`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil || prog == nil {
			return // rejected input is fine; panics are not
		}
		rendered := prog.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip failed to parse:\ninput: %q\nrendered: %q\nerr: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("round trip not stable:\nfirst:  %q\nsecond: %q", rendered, again.String())
		}
	})
}

// FuzzParseAtom asserts atom parsing never panics and agrees with the atom
// renderer.
func FuzzParseAtom(f *testing.F) {
	for _, s := range []string{`P("a", 1, 2.5, true, X)`, `Own("A","B",0.5)`, `Zero()`, `P(`, `)(`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ParseAtom(src)
		if err != nil {
			return
		}
		if strings.TrimSpace(a.Predicate) == "" {
			t.Fatalf("parsed atom with empty predicate from %q", src)
		}
		if _, err := ParseAtom(a.String()); err != nil {
			t.Fatalf("atom round trip failed: %q -> %q: %v", src, a.String(), err)
		}
	})
}
