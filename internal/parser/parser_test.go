package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

// stressSrc is the simplified stress test of Example 4.3 in concrete syntax.
const stressSrc = `
@name("stress-simple").
@output("Default").

% rule alpha: an exogenous shock larger than capital defaults the entity
@label("alpha")
Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.

@label("beta")
Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).

@label("gamma")
Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func TestParseStressProgram(t *testing.T) {
	prog, err := Parse(stressSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Name != "stress-simple" {
		t.Errorf("Name = %q", prog.Name)
	}
	if prog.Output != "Default" {
		t.Errorf("Output = %q", prog.Output)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(prog.Rules))
	}
	if len(prog.Facts) != 7 {
		t.Fatalf("facts = %d, want 7", len(prog.Facts))
	}

	alpha := prog.RuleByLabel("alpha")
	if alpha == nil {
		t.Fatal("rule alpha missing")
	}
	if alpha.Head.Predicate != "Default" || alpha.Head.Arity() != 1 {
		t.Errorf("alpha head = %v", alpha.Head)
	}
	if len(alpha.Body) != 2 || len(alpha.Conditions) != 1 {
		t.Errorf("alpha body/conditions = %d/%d", len(alpha.Body), len(alpha.Conditions))
	}
	if alpha.Conditions[0].Op != ast.OpGt {
		t.Errorf("alpha condition op = %v", alpha.Conditions[0].Op)
	}

	beta := prog.RuleByLabel("beta")
	if beta == nil || beta.Aggregation == nil {
		t.Fatal("rule beta or its aggregation missing")
	}
	if beta.Aggregation.Func != ast.AggSum || beta.Aggregation.Target != "E" || beta.Aggregation.Over != "V" {
		t.Errorf("beta aggregation = %v", beta.Aggregation)
	}

	// Fact values: Debts("B","C",9.0) parsed with float constant.
	last := prog.Facts[6]
	if last.Predicate != "Debts" {
		t.Errorf("last fact = %v", last)
	}
	if f, ok := last.Terms[2].AsFloat(); !ok || f != 9 {
		t.Errorf("last fact value = %v", last.Terms[2])
	}
}

func TestParseCompanyControl(t *testing.T) {
	src := `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
Company("A").
Own("A", "B", 0.6).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s3 := prog.RuleByLabel("s3")
	if s3.Aggregation == nil || s3.Aggregation.Target != "TS" {
		t.Errorf("s3 aggregation = %v", s3.Aggregation)
	}
	if len(s3.Conditions) != 1 || s3.Conditions[0].Left.Name() != "TS" {
		t.Errorf("s3 conditions = %v", s3.Conditions)
	}
	if got := prog.IDBPredicates(); len(got) != 1 || got[0] != "Control" {
		t.Errorf("IDB = %v", got)
	}
}

func TestParseArithmeticAssignment(t *testing.T) {
	r, err := ParseRule(`MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2.`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Assignments) != 1 {
		t.Fatalf("assignments = %v", r.Assignments)
	}
	as := r.Assignments[0]
	be, ok := as.Expr.(ast.BinaryExpr)
	if !ok {
		t.Fatalf("expr = %T", as.Expr)
	}
	if as.Target != "S" || be.Op != ast.ArithMul || be.String() != "S1 * S2" {
		t.Errorf("assignment = %v", as)
	}
}

func TestParseAllArithOps(t *testing.T) {
	for _, op := range []string{"+", "-", "*", "/"} {
		src := `R(X, V) :- P(X, A), Q(X, B), V = A ` + op + ` B.`
		r, err := ParseRule(src)
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if len(r.Assignments) != 1 {
			t.Fatalf("op %s parsed as %v", op, r.Assignments)
		}
		be, ok := r.Assignments[0].Expr.(ast.BinaryExpr)
		if !ok || string(be.Op) != op {
			t.Errorf("op %s parsed as %v", op, r.Assignments[0].Expr)
		}
	}
}

func TestParseAllCompareOps(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want ast.CompareOp
	}{
		{"A > B", ast.OpGt}, {"A >= B", ast.OpGe}, {"A < B", ast.OpLt},
		{"A <= B", ast.OpLe}, {"A == B", ast.OpEq}, {"A != B", ast.OpNe},
	} {
		r, err := ParseRule(`R(A) :- P(A, B), ` + tc.src + `.`)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if len(r.Conditions) != 1 || r.Conditions[0].Op != tc.want {
			t.Errorf("%s parsed as %v", tc.src, r.Conditions)
		}
	}
}

func TestParseEqualityBindingAsCondition(t *testing.T) {
	// T = "long" with no arithmetic becomes an equality condition.
	r, err := ParseRule(`R(C) :- Risk(C, E, T), T = "long".`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Conditions) != 1 || r.Conditions[0].Op != ast.OpEq {
		t.Fatalf("conditions = %v", r.Conditions)
	}
	if r.Conditions[0].Right.StringVal() != "long" {
		t.Errorf("right = %v", r.Conditions[0].Right)
	}
}

func TestParseConstantLeftCondition(t *testing.T) {
	r, err := ParseRule(`R(A) :- P(A, B), 0.5 < B.`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Conditions) != 1 {
		t.Fatalf("conditions = %v", r.Conditions)
	}
	if f, ok := r.Conditions[0].Left.AsFloat(); !ok || f != 0.5 {
		t.Errorf("left = %v", r.Conditions[0].Left)
	}
}

func TestParseAtomFunc(t *testing.T) {
	a, err := ParseAtom(`Own("A", "B", 0.53)`)
	if err != nil {
		t.Fatalf("ParseAtom: %v", err)
	}
	if a.Predicate != "Own" || a.Arity() != 3 || !a.IsGround() {
		t.Errorf("atom = %v", a)
	}
	if _, err := ParseAtom(`Own("A") extra`); err == nil {
		t.Error("trailing input accepted")
	}
	if _, err := ParseAtom(`123`); err == nil {
		t.Error("non-atom accepted")
	}
}

func TestParseNumbers(t *testing.T) {
	tests := []struct {
		src   string
		isInt bool
		wantF float64
		wantI int64
	}{
		{"P(3)", true, 0, 3},
		{"P(-4)", true, 0, -4},
		{"P(0.5)", false, 0.5, 0},
		{"P(-2.25)", false, -2.25, 0},
		{"P(1e3)", false, 1000, 0},
		{"P(2.5e-1)", false, 0.25, 0},
		{"P(15000000)", true, 0, 15000000},
	}
	for _, tt := range tests {
		a, err := ParseAtom(tt.src)
		if err != nil {
			t.Fatalf("%s: %v", tt.src, err)
		}
		got := a.Terms[0]
		if tt.isInt {
			if got.ConstType() != term.ConstInt || got.IntVal() != tt.wantI {
				t.Errorf("%s = %v, want int %d", tt.src, got, tt.wantI)
			}
		} else {
			if f, ok := got.AsFloat(); !ok || f != tt.wantF {
				t.Errorf("%s = %v, want float %v", tt.src, got, tt.wantF)
			}
		}
	}
}

func TestParseBooleansAndStrings(t *testing.T) {
	a, err := ParseAtom(`Flag("x", true, false, "hello\nworld")`)
	if err != nil {
		t.Fatalf("ParseAtom: %v", err)
	}
	if !a.Terms[1].BoolVal() || a.Terms[2].BoolVal() {
		t.Errorf("booleans = %v %v", a.Terms[1], a.Terms[2])
	}
	if a.Terms[3].StringVal() != "hello\nworld" {
		t.Errorf("escaped string = %q", a.Terms[3].StringVal())
	}
}

func TestParseComments(t *testing.T) {
	src := `
% a percent comment
# a hash comment
P("x"). % trailing comment
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Facts) != 1 {
		t.Errorf("facts = %v", prog.Facts)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		sub  string
	}{
		{"unterminated string", `P("abc`, "unterminated"},
		{"missing dot", `P("a")`, "expected"},
		{"non-ground fact", `P(X).`, "not ground"},
		{"bad annotation", `@bogus("v").`, "unknown annotation"},
		{"label on fact", `@label("l") P("a").`, "label"},
		{"dangling label", `@label("l")`, "not followed"},
		{"bad implication", `P(X) : Q(X).`, "':-'"},
		{"bang alone", `P(X) :- Q(X), X ! 3.`, "'!='"},
		{"unexpected char", `P(X) :- Q(X) & R(X).`, "unexpected character"},
		{"duplicate agg", `P(X,S,T) :- Q(X,A), S = sum(A), T = sum(A).`, "multiple aggregations"},
		{"agg unbound", `P(X,S) :- Q(X,A), S = sum(B).`, "unbound"},
		{"duplicate labels", `@label("a") P(X) :- Q(X). @label("a") R(X) :- Q(X).`, "duplicate rule label"},
		{"extensional output", `@output("Q"). P(X) :- Q(X).`, "not intensional"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("invalid source accepted")
			}
			if !strings.Contains(err.Error(), tt.sub) {
				t.Errorf("error %q does not mention %q", err, tt.sub)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("P(\"a\").\nQ(X.")
	if err == nil {
		t.Fatal("invalid source accepted")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

// Round-trip property: parsing the String() rendering of a parsed program
// yields the same structure.
func TestRoundTrip(t *testing.T) {
	prog, err := Parse(stressSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-Parse of %q: %v", prog.String(), err)
	}
	if again.String() != prog.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", prog.String(), again.String())
	}
	if len(again.Rules) != len(prog.Rules) || len(again.Facts) != len(prog.Facts) {
		t.Error("round trip changed clause counts")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on invalid input")
		}
	}()
	MustParse(`P(X`)
}

func TestZeroArityAtom(t *testing.T) {
	prog, err := Parse(`Triggered() :- Event(X).` + "\n" + `Event("e").`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Rules[0].Head.Arity() != 0 {
		t.Errorf("arity = %d", prog.Rules[0].Head.Arity())
	}
}

func TestParseNegation(t *testing.T) {
	r, err := ParseRule(`Eligible(X) :- HasCapital(X, P), not Default(X).`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Body) != 1 || len(r.Negated) != 1 {
		t.Fatalf("body/negated = %d/%d", len(r.Body), len(r.Negated))
	}
	if r.Negated[0].Predicate != "Default" {
		t.Errorf("negated = %v", r.Negated[0])
	}
	// Round trip through String().
	again, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if len(again.Negated) != 1 {
		t.Error("negation lost in round trip")
	}
}

func TestParseNegationSafety(t *testing.T) {
	if _, err := ParseRule(`P(X) :- Q(X), not R(Y).`); err == nil {
		t.Error("unsafe negation accepted")
	}
}

func TestParseConstraint(t *testing.T) {
	prog, err := Parse(`
@output("Control").
Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("nc") :- Control(X, Y), Sanctioned(Y), not Waived(Y).
Own("A", "B", 0.6).
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Constraints) != 1 {
		t.Fatalf("constraints = %d", len(prog.Constraints))
	}
	c := prog.Constraints[0]
	if c.Label != "nc" || len(c.Body) != 2 || len(c.Negated) != 1 {
		t.Errorf("constraint = %+v", c)
	}
	// Round trip.
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-parse:\n%s\n%v", prog.String(), err)
	}
	if len(again.Constraints) != 1 {
		t.Error("constraint lost in round trip")
	}
}

func TestParseConstraintEmptyBody(t *testing.T) {
	if _, err := Parse(`:- .`); err == nil {
		t.Error("empty constraint accepted")
	}
}

func TestParseComplexExpressions(t *testing.T) {
	tests := []struct {
		src  string
		want string // expression rendering
	}{
		{`V = A + B * C`, "A + (B * C)"},
		{`V = A * B + C`, "(A * B) + C"},
		{`V = (A + B) * C`, "(A + B) * C"},
		{`V = A + B + C`, "(A + B) + C"},
		{`V = A - B - C`, "(A - B) - C"},
		{`V = A / (B + C)`, "A / (B + C)"},
		{`V = (A + B) * (C - 2)`, "(A + B) * (C - 2)"},
	}
	for _, tt := range tests {
		r, err := ParseRule(`R(V) :- P(A, B, C), ` + tt.src + `.`)
		if err != nil {
			t.Fatalf("%s: %v", tt.src, err)
		}
		if len(r.Assignments) != 1 {
			t.Fatalf("%s: assignments = %v", tt.src, r.Assignments)
		}
		if got := r.Assignments[0].Expr.String(); got != tt.want {
			t.Errorf("%s parsed as %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParenthesizedOperandDegeneratesToCondition(t *testing.T) {
	// A fully parenthesized single operand is an equality condition, not an
	// assignment.
	r, err := ParseRule(`R(A) :- P(A, B, C), B = ((A)).`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Assignments) != 0 || len(r.Conditions) != 1 || r.Conditions[0].Op != ast.OpEq {
		t.Errorf("parsed as %v / %v", r.Assignments, r.Conditions)
	}
}

func TestParseExpressionErrors(t *testing.T) {
	for _, src := range []string{
		`R(V) :- P(A), V = (A + .`,
		`R(V) :- P(A), V = (A + B.`,
		`R(V) :- P(A), V = A + .`,
	} {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("%s accepted", src)
		}
	}
}
