package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Parse parses a complete Vadalog program from source text.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// ParseRule parses a single rule clause (with optional @label prefix).
func ParseRule(src string) (*ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("expected exactly one rule, found %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

// ParseAtom parses a single ground or non-ground atom, without trailing dot.
func ParseAtom(src string) (ast.Atom, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tokEOF {
		return ast.Atom{}, p.errorf("trailing input after atom")
	}
	return a, nil
}

// MustParse parses a program and panics on error. It is intended for
// embedding the built-in KG applications whose sources are compile-time
// constants.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return prog
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %v, found %v %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseProgram() (*ast.Program, error) {
	prog := &ast.Program{}
	var pendingLabel string
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokAt {
			name, value, err := p.parseAnnotation()
			if err != nil {
				return nil, err
			}
			switch name {
			case "name":
				prog.Name = value
			case "output":
				prog.Output = value
			case "label":
				pendingLabel = value
				continue // label attaches to the next rule; no dot follows
			default:
				return nil, p.errorf("unknown annotation @%s", name)
			}
			continue
		}
		clause, err := p.parseClause(pendingLabel)
		if err != nil {
			return nil, err
		}
		pendingLabel = ""
		switch {
		case clause.rule != nil:
			prog.Rules = append(prog.Rules, clause.rule)
		case clause.constraint != nil:
			prog.Constraints = append(prog.Constraints, clause.constraint)
		default:
			prog.Facts = append(prog.Facts, clause.fact)
		}
	}
	if pendingLabel != "" {
		return nil, fmt.Errorf("@label(%q) not followed by a rule", pendingLabel)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// parseAnnotation parses @ident("value") with an optional trailing dot
// (mandatory for @name/@output, absent for @label which prefixes a rule).
func (p *parser) parseAnnotation() (name, value string, err error) {
	if _, err = p.expect(tokAt); err != nil {
		return
	}
	id, err := p.expect(tokIdent)
	if err != nil {
		return
	}
	if _, err = p.expect(tokLParen); err != nil {
		return
	}
	val, err := p.expect(tokString)
	if err != nil {
		return
	}
	if _, err = p.expect(tokRParen); err != nil {
		return
	}
	if id.text != "label" {
		if _, err = p.expect(tokDot); err != nil {
			return
		}
	}
	return id.text, val.text, nil
}

type clause struct {
	rule       *ast.Rule
	constraint *ast.Constraint
	fact       ast.Atom
}

func (p *parser) parseClause(label string) (clause, error) {
	// A clause starting with ':-' is a negative constraint (body → ⊥).
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return clause{}, err
		}
		r := &ast.Rule{Label: label, Head: ast.NewAtom("⊥")}
		if err := p.parseConjuncts(r); err != nil {
			return clause{}, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return clause{}, err
		}
		return clause{constraint: &ast.Constraint{
			Label:      label,
			Body:       r.Body,
			Negated:    r.Negated,
			Conditions: r.Conditions,
		}}, nil
	}
	head, err := p.parseAtom()
	if err != nil {
		return clause{}, err
	}
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return clause{}, err
		}
		if !head.IsGround() {
			return clause{}, fmt.Errorf("fact %v is not ground", head)
		}
		if label != "" {
			return clause{}, fmt.Errorf("@label on fact %v", head)
		}
		return clause{fact: head}, nil
	case tokImplies:
		if err := p.advance(); err != nil {
			return clause{}, err
		}
		r, err := p.parseRuleBody(label, head)
		if err != nil {
			return clause{}, err
		}
		return clause{rule: r}, nil
	default:
		return clause{}, p.errorf("expected '.' or ':-' after atom, found %q", p.tok.text)
	}
}

func (p *parser) parseRuleBody(label string, head ast.Atom) (*ast.Rule, error) {
	r := &ast.Rule{Label: label, Head: head}
	if err := p.parseConjuncts(r); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return r, nil
}

// parseConjuncts parses a comma-separated conjunction of body items into r.
func (p *parser) parseConjuncts(r *ast.Rule) error {
	for {
		if err := p.parseBodyItem(r); err != nil {
			return err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// parseBodyItem parses one conjunct: an atom, a condition, an assignment or
// an aggregation.
func (p *parser) parseBodyItem(r *ast.Rule) error {
	// An item starting with a non-identifier operand must be a condition
	// with a constant left side, e.g. 0.5 < S.
	if p.tok.kind == tokNumber || p.tok.kind == tokString {
		left, err := p.parseOperand()
		if err != nil {
			return err
		}
		return p.parseConditionRest(r, left)
	}
	id, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	// `not Atom` is a (stratified) negated literal. The keyword form only
	// triggers when followed by an identifier, so `not` can still appear
	// as a variable name in other positions.
	if id.text == "not" && p.tok.kind == tokIdent {
		atom, err := p.parseAtom()
		if err != nil {
			return err
		}
		r.Negated = append(r.Negated, atom)
		return nil
	}
	switch p.tok.kind {
	case tokLParen:
		// Relational atom.
		atom, err := p.parseAtomArgs(id.text)
		if err != nil {
			return err
		}
		r.Body = append(r.Body, atom)
		return nil
	case tokOp:
		op := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if op == "=" {
			return p.parseBindingRest(r, id.text)
		}
		cmpOp := normalizeCompareOp(op)
		if !cmpOp.Valid() {
			return p.errorf("expected comparison operator, found %q", op)
		}
		right, err := p.parseOperand()
		if err != nil {
			return err
		}
		r.Conditions = append(r.Conditions, ast.Condition{Left: term.Var(id.text), Op: cmpOp, Right: right})
		return nil
	default:
		return p.errorf("expected '(' or operator after identifier %q", id.text)
	}
}

// parseConditionRest parses `op operand` after a constant left operand.
func (p *parser) parseConditionRest(r *ast.Rule, left term.Term) error {
	opTok, err := p.expect(tokOp)
	if err != nil {
		return err
	}
	op := normalizeCompareOp(opTok.text)
	if !op.Valid() {
		return p.errorf("expected comparison operator, found %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return err
	}
	r.Conditions = append(r.Conditions, ast.Condition{Left: left, Op: op, Right: right})
	return nil
}

// parseBindingRest parses what follows `target =`: either an aggregation
// `sum(v)`, or an arithmetic expression `a op b`, or an equality condition
// when the right side is a single operand (treated as target == operand).
func (p *parser) parseBindingRest(r *ast.Rule, target string) error {
	if p.tok.kind == tokIdent && ast.AggFunc(p.tok.text).Valid() {
		fn := ast.AggFunc(p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return err
			}
			over, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			if r.Aggregation != nil {
				return p.errorf("rule has multiple aggregations")
			}
			r.Aggregation = &ast.Aggregation{Target: target, Func: fn, Over: over.text}
			return nil
		}
		// The identifier happened to be named like an aggregation function
		// but is a plain operand; treat it as a variable leaf.
		return p.parseBindingTail(r, target, ast.TermExpr{T: term.Var(string(fn))})
	}
	left, err := p.parseExprOperand()
	if err != nil {
		return err
	}
	return p.parseBindingTail(r, target, left)
}

func (p *parser) parseBindingTail(r *ast.Rule, target string, left ast.Expr) error {
	expr, err := p.parseExprRest(left, 0)
	if err != nil {
		return err
	}
	if leaf, ok := expr.(ast.TermExpr); ok {
		// target = operand with no arithmetic: an equality condition.
		r.Conditions = append(r.Conditions, ast.Condition{Left: term.Var(target), Op: ast.OpEq, Right: leaf.T})
		return nil
	}
	r.Assignments = append(r.Assignments, ast.Assignment{Target: target, Expr: expr})
	return nil
}

// Operator precedence for expression parsing.
func arithPrecedence(op ast.ArithOp) int {
	switch op {
	case ast.ArithMul, ast.ArithDiv:
		return 2
	case ast.ArithAdd, ast.ArithSub:
		return 1
	default:
		return 0
	}
}

// parseExprRest continues a precedence-climbing expression parse with the
// given left operand: it consumes operators of precedence >= minPrec.
func (p *parser) parseExprRest(left ast.Expr, minPrec int) (ast.Expr, error) {
	for p.tok.kind == tokOp {
		op := ast.ArithOp(p.tok.text)
		prec := arithPrecedence(op)
		if prec == 0 || prec < minPrec {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExprOperand()
		if err != nil {
			return nil, err
		}
		// Bind tighter operators to the right operand first.
		right, err = p.parseExprRest(right, prec+1)
		if err != nil {
			return nil, err
		}
		left = ast.BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

// parseExprOperand parses a primary expression: a term or a parenthesized
// sub-expression.
func (p *parser) parseExprOperand() (ast.Expr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExprOperand()
		if err != nil {
			return nil, err
		}
		expr, err := p.parseExprRest(inner, 0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return expr, nil
	}
	t, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return ast.TermExpr{T: t}, nil
}

func normalizeCompareOp(op string) ast.CompareOp {
	if op == "=" {
		return ast.OpEq
	}
	return ast.CompareOp(op)
}

func (p *parser) parseAtom() (ast.Atom, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	return p.parseAtomArgs(id.text)
}

func (p *parser) parseAtomArgs(pred string) (ast.Atom, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return ast.Atom{}, err
	}
	atom := ast.Atom{Predicate: pred}
	if p.tok.kind == tokRParen {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		return atom, nil
	}
	for {
		t, err := p.parseOperand()
		if err != nil {
			return ast.Atom{}, err
		}
		atom.Terms = append(atom.Terms, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return atom, nil
}

// parseOperand parses a term: identifier (variable or boolean literal),
// number or quoted string.
func (p *parser) parseOperand() (term.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		switch text {
		case "true":
			return term.Bool(true), nil
		case "false":
			return term.Bool(false), nil
		}
		return term.Var(text), nil
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		if !strings.ContainsAny(text, ".eE") {
			i, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return term.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return term.Term{}, fmt.Errorf("invalid number %q: %v", text, err)
		}
		return term.Float(f), nil
	case tokString:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return term.Term{}, err
		}
		return term.Str(text), nil
	default:
		return term.Term{}, p.errorf("expected term, found %v %q", p.tok.kind, p.tok.text)
	}
}
