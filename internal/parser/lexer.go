// Package parser implements the concrete syntax of the Vadalog subset used
// throughout the repository. The grammar covers everything the paper's rule
// sets need:
//
//	program     = { annotation | clause } .
//	annotation  = "@name(" string ")." | "@output(" string ")."
//	clause      = fact | rule .
//	fact        = atom "." .
//	rule        = [ "@label(" string ")" ] atom ":-" bodyItem { "," bodyItem } "." .
//	bodyItem    = atom | condition | assignment | aggregation .
//	condition   = operand compareOp operand .
//	assignment  = ident "=" operand arithOp operand .
//	aggregation = ident "=" aggFunc "(" ident ")" .
//	atom        = predicate "(" [ operand { "," operand } ] ")" .
//	operand     = ident | number | string | boolean .
//
// Identifiers beginning with a lowercase letter inside atom arguments are
// variables too (Vadalog style is flexible); we adopt the convention that an
// identifier is a variable unless it is a quoted string, a number, or one of
// the boolean literals. Percent (%) and '#' start line comments.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokOp      // comparison or arithmetic operator, '='
	tokAt      // @
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokOp:
		return "operator"
	case tokAt:
		return "'@'"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer scans program text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%' || c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case c == '.':
		// Distinguish the clause terminator from a decimal point: a dot
		// followed by a digit only occurs inside numbers, which are lexed
		// below starting from a digit, so a bare dot here terminates.
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case c == '@':
		l.advance()
		return token{tokAt, "@", line, col}, nil
	case c == ':':
		l.advance()
		if l.peekByte() != '-' {
			return token{}, l.errorf(line, col, "expected ':-', found ':%c'", l.peekByte())
		}
		l.advance()
		return token{tokImplies, ":-", line, col}, nil
	case c == '"':
		return l.lexString(line, col)
	case c == '-' || unicode.IsDigit(rune(c)):
		return l.lexNumber(line, col)
	case isOpByte(c):
		return l.lexOperator(line, col)
	case isIdentStart(rune(c)):
		return l.lexIdent(line, col)
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", string(c))
	}
}

func isOpByte(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '*', '/':
		return true
	}
	return false
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated string")
		}
		c := l.advance()
		if c == '"' {
			return token{tokString, sb.String(), line, col}, nil
		}
		if c == '\\' && l.pos < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'a':
				sb.WriteByte('\a')
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'v':
				sb.WriteByte('\v')
			case '"', '\\', '\'':
				sb.WriteByte(esc)
			case 'x', 'u', 'U':
				// Hex escapes as produced by strconv.Quote: \xHH, \uXXXX,
				// \UXXXXXXXX.
				n := map[byte]int{'x': 2, 'u': 4, 'U': 8}[esc]
				v := rune(0)
				for i := 0; i < n; i++ {
					if l.pos >= len(l.src) {
						return token{}, l.errorf(line, col, "truncated \\%c escape", esc)
					}
					d := hexVal(l.advance())
					if d < 0 {
						return token{}, l.errorf(line, col, "invalid \\%c escape", esc)
					}
					v = v<<4 | rune(d)
				}
				if esc == 'x' {
					sb.WriteByte(byte(v))
				} else {
					sb.WriteRune(v)
				}
			default:
				return token{}, l.errorf(line, col, "unknown escape \\%c", esc)
			}
			continue
		}
		sb.WriteByte(c)
	}
}

// hexVal returns the value of a hex digit, or -1.
func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	}
	return -1
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	var sb strings.Builder
	if l.peekByte() == '-' {
		sb.WriteByte(l.advance())
		if !unicode.IsDigit(rune(l.peekByte())) {
			// A lone '-' is the arithmetic operator.
			return token{tokOp, "-", line, col}, nil
		}
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.peekByte()
		if unicode.IsDigit(rune(c)) {
			sb.WriteByte(l.advance())
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			seenDot = true
			sb.WriteByte(l.advance())
			continue
		}
		if c == 'e' || c == 'E' {
			// scientific notation: e[+-]?digits
			save := l.pos
			tmp := sb.String()
			sb.WriteByte(l.advance())
			if l.peekByte() == '+' || l.peekByte() == '-' {
				sb.WriteByte(l.advance())
			}
			if !unicode.IsDigit(rune(l.peekByte())) {
				l.pos = save
				sb.Reset()
				sb.WriteString(tmp)
				break
			}
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
				sb.WriteByte(l.advance())
			}
		}
		break
	}
	return token{tokNumber, sb.String(), line, col}, nil
}

func (l *lexer) lexOperator(line, col int) (token, error) {
	c := l.advance()
	text := string(c)
	switch c {
	case '<', '>':
		if l.peekByte() == '=' {
			text += string(l.advance())
		}
	case '=':
		if l.peekByte() == '=' {
			text += string(l.advance())
		}
	case '!':
		if l.peekByte() != '=' {
			return token{}, l.errorf(line, col, "expected '!=', found '!%c'", l.peekByte())
		}
		text += string(l.advance())
	}
	return token{tokOp, text, line, col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	var sb strings.Builder
	for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
		sb.WriteByte(l.advance())
	}
	return token{tokIdent, sb.String(), line, col}, nil
}
