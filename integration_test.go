package repro

// Integration and scale tests: sweep the full pipeline across every bundled
// application and a spectrum of synthetic workloads, asserting the paper's
// structural guarantees — completeness of every explanation, determinism,
// naive/semi-naive equivalence — at sizes well beyond the unit tests.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/parser"
	"repro/internal/synth"
)

// explainAllScenarios runs a batch of scenarios through an application and
// verifies the completeness of every answer's explanation.
func explainAllScenarios(t *testing.T, scenarios []synth.Scenario) {
	t.Helper()
	pipes := map[string]*core.Pipeline{}
	for _, sc := range scenarios {
		pipe, ok := pipes[sc.App]
		if !ok {
			app, err := apps.ByName(sc.App)
			if err != nil {
				t.Fatal(err)
			}
			pipe, err = app.Pipeline(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			pipes[sc.App] = pipe
		}
		res, err := pipe.Reason(sc.Facts...)
		if err != nil {
			t.Fatalf("%s: %v", sc.App, err)
		}
		exps, err := pipe.ExplainAll(res)
		if err != nil {
			t.Fatalf("%s: ExplainAll: %v", sc.App, err)
		}
		if len(exps) == 0 {
			t.Fatalf("%s: no answers", sc.App)
		}
		for _, e := range exps {
			if err := e.Verify(); err != nil {
				t.Errorf("%s: %v", sc.App, err)
			}
		}
	}
}

// TestIntegrationCompletenessSweep: every answer of every workload across
// all generators has a complete explanation.
func TestIntegrationCompletenessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	var scenarios []synth.Scenario
	for seed := int64(0); seed < 6; seed++ {
		scenarios = append(scenarios,
			synth.ControlChain(int(3+seed*3), seed),
			synth.ControlJoint(int(2+seed), seed),
			synth.ControlChainJoint(int(1+seed%3), 2, seed),
			synth.StressCascade(int(1+seed*2), seed),
			synth.StressFanIn(int(2+seed), seed),
			synth.CloseLinkChain(int(1+seed%4), seed),
		)
	}
	explainAllScenarios(t, scenarios)
}

// TestIntegrationLargeControlGraph: a 200-hop control chain reasons, and the
// deepest fact explains completely, with one cycle segment per layer beyond
// the first.
func TestIntegrationLargeControlGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph skipped in -short mode")
	}
	const hops = 200
	sc := synth.ControlChain(hops, 99)
	app, _ := apps.ByName(sc.App)
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Reason(sc.Facts...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pipe.ExplainQuery(res, sc.Query)
	if err != nil {
		t.Fatal(err)
	}
	if e.Proof.Size() != hops {
		t.Errorf("proof size = %d, want %d", e.Proof.Size(), hops)
	}
	ids := e.PathIDs()
	if len(ids) != hops-1 {
		t.Errorf("segments = %d, want %d (Π2 + %d cycles)", len(ids), hops-1, hops-2)
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	// The explanation mentions every intermediate entity.
	for i := 0; i <= hops; i += 50 {
		name := fmt.Sprintf("N99_%d", i)
		if !strings.Contains(e.Text, name) {
			t.Errorf("explanation missing %s", name)
		}
	}
}

// TestIntegrationDeepCascade: a 101-step stress cascade (50 hops) explains
// completely and the omission contrast with the LLM baseline is extreme.
func TestIntegrationDeepCascade(t *testing.T) {
	if testing.Short() {
		t.Skip("deep cascade skipped in -short mode")
	}
	sc := synth.StressCascade(101, 7)
	app, _ := apps.ByName(sc.App)
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Reason(sc.Facts...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pipe.ExplainQuery(res, sc.Query)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	if r := llm.OmissionRatio(e.Text, e.Proof.Constants()); r != 0 {
		t.Errorf("template omission = %v at 101 steps", r)
	}
	det, err := pipe.VerbalizeProof(e.Proof)
	if err != nil {
		t.Fatal(err)
	}
	// The distinct-constants metric saturates on deep cascades (the same
	// few amounts repeat at every hop), so the contrast threshold is
	// modest; the template side must still be exactly zero.
	summ := (&llm.Simulated{Mode: llm.Summarize, Seed: 1}).Generate(det)
	if r := llm.OmissionRatio(summ, e.Proof.Constants()); r < 0.1 {
		t.Errorf("summary omission = %v at 101 steps, expected visible loss", r)
	}
}

// TestIntegrationNaiveSemiNaiveAtScale: the two evaluation strategies agree
// on a large mixed workload.
func TestIntegrationNaiveSemiNaiveAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale equivalence skipped in -short mode")
	}
	sc := synth.ControlChain(60, 3)
	app, _ := apps.ByName(sc.App)
	prog := app.Program()
	semi, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if semi.Store.Len() != naive.Store.Len() {
		t.Fatalf("fact counts differ: %d vs %d", semi.Store.Len(), naive.Store.Len())
	}
	for _, f := range semi.Store.Facts() {
		if naive.Store.Lookup(f.Atom) == nil {
			t.Errorf("fact %v missing from naive run", f)
		}
	}
}

// TestIntegrationReasonDeterminism: repeated runs produce byte-identical
// explanations (required for auditability of business reports).
func TestIntegrationReasonDeterminism(t *testing.T) {
	sc := synth.StressCascade(9, 11)
	app, _ := apps.ByName(sc.App)
	texts := map[string]bool{}
	for i := 0; i < 3; i++ {
		pipe, err := app.Pipeline(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := pipe.Reason(sc.Facts...)
		if err != nil {
			t.Fatal(err)
		}
		e, err := pipe.ExplainQuery(res, sc.Query)
		if err != nil {
			t.Fatal(err)
		}
		texts[e.Text] = true
	}
	if len(texts) != 1 {
		t.Errorf("explanations differ across runs: %d variants", len(texts))
	}
}

// TestIntegrationConcurrentExplanations: one pipeline serves concurrent
// explanation queries over distinct results safely.
func TestIntegrationConcurrentExplanations(t *testing.T) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			sc := synth.ControlChain(10, seed)
			res, err := pipe.Reason(sc.Facts...)
			if err != nil {
				errc <- err
				return
			}
			pattern, err := parser.ParseAtom(sc.Query)
			if err != nil {
				errc <- err
				return
			}
			id, err := res.LookupDerived(pattern)
			if err != nil {
				errc <- err
				return
			}
			e, err := pipe.ExplainFact(res, id)
			if err != nil {
				errc <- err
				return
			}
			errc <- e.Verify()
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}
