package repro

// End-to-end tests: build the command-line tools and examples once and run
// them as real processes, asserting on their observable output. These are
// the closest thing to the paper's deployed pipeline (Section 4.4).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles a main package into a temp binary, cached per test
// binary run.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestE2EReason(t *testing.T) {
	bin := buildTool(t, "cmd/reason")

	out, err := run(t, bin, "-app", "stress-simple")
	if err != nil {
		t.Fatalf("reason: %v\n%s", err, out)
	}
	for _, sub := range []string{"fixpoint after", "Default(A)", "Default(B)", "Default(C)"} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}

	// Chase graph dump.
	out, err = run(t, bin, "-app", "stress-simple", "-graph")
	if err != nil {
		t.Fatalf("reason -graph: %v", err)
	}
	if !strings.Contains(out, "--beta--> Risk(C, 11)") {
		t.Errorf("graph output missing beta step:\n%s", out)
	}

	// DOT output.
	out, err = run(t, bin, "-app", "stress-simple", "-dot")
	if err != nil || !strings.Contains(out, "digraph chase") {
		t.Errorf("dot output: %v\n%s", err, out)
	}

	// Error paths.
	if out, err := run(t, bin); err == nil {
		t.Errorf("no flags accepted:\n%s", out)
	}
	if out, err := run(t, bin, "-app", "bogus"); err == nil {
		t.Errorf("unknown app accepted:\n%s", out)
	}
}

func TestE2EExplain(t *testing.T) {
	bin := buildTool(t, "cmd/explain")

	out, err := run(t, bin, "-app", "stress-simple", "-query", `Default("C")`, "-paths")
	if err != nil {
		t.Fatalf("explain: %v\n%s", err, out)
	}
	for _, sub := range []string{"== Default(C) ==", "[Π2 Γ1*]", "sum of 2 and 9"} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}

	// -all explains every answer.
	out, err = run(t, bin, "-app", "stress-simple", "-all")
	if err != nil {
		t.Fatalf("explain -all: %v\n%s", err, out)
	}
	if strings.Count(out, "== Default(") != 3 {
		t.Errorf("expected 3 explanations:\n%s", out)
	}

	// -proof appends the step-by-step verbalization.
	out, err = run(t, bin, "-app", "stress-simple", "-query", `Default("C")`, "-proof")
	if err != nil || !strings.Contains(out, "step-by-step proof:") {
		t.Errorf("explain -proof: %v\n%s", err, out)
	}

	// Unknown fact.
	if out, err := run(t, bin, "-app", "stress-simple", "-query", `Default("Z")`); err == nil {
		t.Errorf("missing fact accepted:\n%s", out)
	}
}

func TestE2EExplainUserFiles(t *testing.T) {
	bin := buildTool(t, "cmd/explain")
	dir := t.TempDir()
	prog := filepath.Join(dir, "rules.vada")
	glos := filepath.Join(dir, "glossary.txt")
	facts := filepath.Join(dir, "facts.vada")
	writeFile(t, prog, `
@output("Reachable").
@label("base") Reachable(X, Y) :- Edge(X, Y).
@label("step") Reachable(X, Z) :- Reachable(X, Y), Edge(Y, Z).
`)
	writeFile(t, glos, `
Edge(a, b): there is a direct link from <a> to <b>.
Reachable(a, b): <b> is reachable from <a>.
`)
	writeFile(t, facts, `
Edge("n1", "n2").
Edge("n2", "n3").
`)
	out, err := run(t, bin, "-program", prog, "-glossary", glos, "-facts", facts,
		"-query", `Reachable("n1", "n3")`)
	if err != nil {
		t.Fatalf("explain user files: %v\n%s", err, out)
	}
	for _, sub := range []string{"n1", "n2", "n3", "reachable"} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
}

func TestE2EAnalyze(t *testing.T) {
	bin := buildTool(t, "cmd/analyze")
	out, err := run(t, bin, "-app", "company-control", "-templates")
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	for _, sub := range []string{
		"critical nodes: [Control]",
		"Π5* = {s1, s2, s3}",
		"Γ1* = {s3}",
		"explanation templates:",
		"<x> exercises control over",
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
	out, err = run(t, bin, "-app", "company-control", "-dot")
	if err != nil || !strings.Contains(out, "digraph dependency") {
		t.Errorf("analyze -dot: %v\n%s", err, out)
	}
}

func TestE2EBenchTool(t *testing.T) {
	if testing.Short() {
		t.Skip("bench tool run skipped in -short mode")
	}
	bin := buildTool(t, "cmd/bench")
	out, err := run(t, bin, "-fig", "fig14", "-participants", "12")
	if err != nil {
		t.Fatalf("bench fig14: %v\n%s", err, out)
	}
	if !strings.Contains(out, "overall accuracy:") {
		t.Errorf("fig14 output malformed:\n%s", out)
	}
	out, err = run(t, bin, "-fig", "ex48")
	if err != nil || !strings.Contains(out, "paths: {Π2, Γ1*}") {
		t.Errorf("bench ex48: %v\n%s", err, out)
	}
	if out, err := run(t, bin, "-fig", "nope"); err == nil {
		t.Errorf("unknown figure accepted:\n%s", out)
	}
}

func TestE2EExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := map[string][]string{
		"examples/quickstart":     {"reasoning paths", "why is C in default?", "completeness check: ok"},
		"examples/companycontrol": {"Control(IrishBank, MadridCredit)", "0.57"},
		"examples/stresstest":     {"Default(F)", "omission ratio", "complete by construction"},
		"examples/newdomain":      {"Flagged(Collector)", "all explanations passed"},
	}
	for pkg, wants := range examples {
		pkg, wants := pkg, wants
		t.Run(filepath.Base(pkg), func(t *testing.T) {
			bin := buildTool(t, pkg)
			out, err := run(t, bin)
			if err != nil {
				t.Fatalf("%s: %v\n%s", pkg, err, out)
			}
			for _, sub := range wants {
				if !strings.Contains(out, sub) {
					t.Errorf("%s output missing %q:\n%s", pkg, sub, out)
				}
			}
		})
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestE2ECloselinkExample(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	bin := buildTool(t, "examples/closelink")
	out, err := run(t, bin)
	if err != nil {
		t.Fatalf("closelink: %v\n%s", err, out)
	}
	for _, sub := range []string{
		"CloseLink(AlphaHolding, GammaCredit)",
		"pseudonymized for external use:",
		"Entity-1",
		"restored internally:",
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
	// No real entity name appears in the pseudonymized section.
	anonStart := strings.Index(out, "pseudonymized for external use:")
	anonEnd := strings.Index(out, "restored internally:")
	if anonStart < 0 || anonEnd < anonStart {
		t.Fatal("sections not found")
	}
	anon := out[anonStart:anonEnd]
	for _, name := range []string{"AlphaHolding", "BetaBank", "GammaCredit"} {
		if strings.Contains(anon, name) {
			t.Errorf("entity %q leaked into pseudonymized text", name)
		}
	}
}

func TestE2EAnalyzeReviewWorkflow(t *testing.T) {
	bin := buildTool(t, "cmd/analyze")
	dir := t.TempDir()
	review := filepath.Join(dir, "review.md")

	out, err := run(t, bin, "-app", "stress-simple", "-export-templates", review)
	if err != nil {
		t.Fatalf("export: %v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote 5 templates") {
		t.Errorf("export output: %s", out)
	}
	doc, err := os.ReadFile(review)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "## Π2*") {
		t.Errorf("review document malformed:\n%s", doc)
	}

	// Edit one template and re-import.
	edited := string(doc) + "\n## Π1\nReviewed: <f> (capital <p1>) defaults under a shock of <s> euro.\n"
	writeFile(t, review, edited)
	out, err = run(t, bin, "-app", "stress-simple", "-import-templates", review)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, out)
	}
	if !strings.Contains(out, "attached 1 reviewed variants") {
		t.Errorf("import output: %s", out)
	}

	// A token-dropping edit is rejected.
	writeFile(t, review, "## Π1\nshock hits <f>.\n")
	if out, err := run(t, bin, "-app", "stress-simple", "-import-templates", review); err == nil {
		t.Errorf("token-dropping review accepted:\n%s", out)
	}
}

func TestE2EDraftGlossary(t *testing.T) {
	bin := buildTool(t, "cmd/analyze")
	dir := t.TempDir()
	prog := filepath.Join(dir, "rules.vada")
	writeFile(t, prog, `
@output("B").
B(X, Y) :- A(X, Y).
`)
	out, err := run(t, bin, "-program", prog, "-draft-glossary")
	if err != nil {
		t.Fatalf("draft: %v\n%s", err, out)
	}
	for _, sub := range []string{"A(a1, a2):", "B(a1, a2):"} {
		if !strings.Contains(out, sub) {
			t.Errorf("draft missing %q:\n%s", sub, out)
		}
	}
	// A fully documented app drafts nothing.
	out, err = run(t, bin, "-app", "stress-simple", "-draft-glossary")
	if err != nil || !strings.Contains(out, "every predicate is already documented") {
		t.Errorf("documented app draft: %v\n%s", err, out)
	}
}
