// Package repro is a from-scratch Go reproduction of "Template-based
// Explainable Inference over High-Stakes Financial Knowledge Graphs"
// (EDBT 2025): a chase-based Vadalog-subset reasoning engine with full
// provenance, the structural analysis deriving reasoning paths from rule
// dependency graphs, a verbalizer and template engine producing fluent,
// provably complete natural-language explanations, the paper's financial
// KG applications, and the complete experimental harness regenerating every
// table and figure of the paper's evaluation.
//
// See README.md for the quickstart, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness lives in bench_test.go (one benchmark per table and
// figure); the user-facing entry point is package internal/core.
package repro
